//! Tokens and the lexer for MiniDBPL.

use crate::error::LangError;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // literals
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (single-quoted, `''` escapes a quote).
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// An identifier (lower- or upper-case initial).
    Ident(String),

    // keywords
    /// `type`
    Type,
    /// `include`
    Include,
    /// `in`
    In,
    /// `let`
    Let,
    /// `fun`
    Fun,
    /// `fn`
    Fn,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `dynamic`
    Dynamic,
    /// `coerce`
    Coerce,
    /// `to`
    To,
    /// `typeof`
    Typeof,
    /// `with`
    With,
    /// `extern`
    Extern,
    /// `intern`
    Intern,
    /// `forall`
    Forall,
    /// `exists`
    Exists,
    /// `tag`
    Tag,
    /// `case`
    Case,
    /// `of`
    Of,
    /// `begin`
    Begin,
    /// `commit`
    Commit,
    /// `abort`
    Abort,
    /// `|`
    Pipe,

    // punctuation
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `=>`
    FatArrow,
    /// `->`
    Arrow,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `==`
    EqEq,
    /// `<>`
    Ne,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `++`
    PlusPlus,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::Bool(b) => write!(f, "{b}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Eof => write!(f, "<eof>"),
            other => write!(f, "{}", keyword_or_symbol(other)),
        }
    }
}

fn keyword_or_symbol(t: &Tok) -> &'static str {
    match t {
        Tok::Type => "type",
        Tok::Include => "include",
        Tok::In => "in",
        Tok::Let => "let",
        Tok::Fun => "fun",
        Tok::Fn => "fn",
        Tok::If => "if",
        Tok::Then => "then",
        Tok::Else => "else",
        Tok::Dynamic => "dynamic",
        Tok::Coerce => "coerce",
        Tok::To => "to",
        Tok::Typeof => "typeof",
        Tok::With => "with",
        Tok::Extern => "extern",
        Tok::Intern => "intern",
        Tok::Forall => "forall",
        Tok::Exists => "exists",
        Tok::Tag => "tag",
        Tok::Case => "case",
        Tok::Of => "of",
        Tok::Begin => "begin",
        Tok::Commit => "commit",
        Tok::Abort => "abort",
        Tok::Pipe => "|",
        Tok::LParen => "(",
        Tok::RParen => ")",
        Tok::LBrace => "{",
        Tok::RBrace => "}",
        Tok::LBracket => "[",
        Tok::RBracket => "]",
        Tok::Comma => ",",
        Tok::Semi => ";",
        Tok::Colon => ":",
        Tok::Dot => ".",
        Tok::Eq => "=",
        Tok::FatArrow => "=>",
        Tok::Arrow => "->",
        Tok::Le => "<=",
        Tok::Lt => "<",
        Tok::Ge => ">=",
        Tok::Gt => ">",
        Tok::EqEq => "==",
        Tok::Ne => "<>",
        Tok::Plus => "+",
        Tok::Minus => "-",
        Tok::Star => "*",
        Tok::Slash => "/",
        Tok::PlusPlus => "++",
        Tok::And => "and",
        Tok::Or => "or",
        Tok::Not => "not",
        _ => "?",
    }
}

/// A token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Byte offset of the token's first character.
    pub at: usize,
}

/// Tokenize a program. Comments run from `--` to end of line.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LangError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        // whitespace
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // comments
        if c == b'-' && b.get(i + 1) == Some(&b'-') {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let at = i;
        // numbers
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
            let is_float = i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit();
            if is_float {
                i += 1;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let x: f64 = text
                    .parse()
                    .map_err(|_| LangError::lex(at, format!("bad float literal `{text}`")))?;
                out.push(Spanned {
                    tok: Tok::Float(x),
                    at,
                });
            } else {
                let text = &src[start..i];
                let n: i64 = text.parse().map_err(|_| {
                    LangError::lex(at, format!("integer literal out of range `{text}`"))
                })?;
                out.push(Spanned {
                    tok: Tok::Int(n),
                    at,
                });
            }
            continue;
        }
        // strings
        if c == b'\'' {
            i += 1;
            let mut s = String::new();
            loop {
                match b.get(i) {
                    None => return Err(LangError::lex(at, "unterminated string".to_string())),
                    Some(b'\'') if b.get(i + 1) == Some(&b'\'') => {
                        s.push('\'');
                        i += 2;
                    }
                    Some(b'\'') => {
                        i += 1;
                        break;
                    }
                    Some(_) => {
                        // Advance over a whole UTF-8 scalar.
                        let ch = src[i..].chars().next().expect("in bounds");
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
            }
            out.push(Spanned {
                tok: Tok::Str(s),
                at,
            });
            continue;
        }
        // identifiers and keywords
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            let word = &src[start..i];
            let tok = match word {
                "type" => Tok::Type,
                "include" => Tok::Include,
                "in" => Tok::In,
                "let" => Tok::Let,
                "fun" => Tok::Fun,
                "fn" => Tok::Fn,
                "if" => Tok::If,
                "then" => Tok::Then,
                "else" => Tok::Else,
                "dynamic" => Tok::Dynamic,
                "coerce" => Tok::Coerce,
                "to" => Tok::To,
                "typeof" => Tok::Typeof,
                "with" => Tok::With,
                "extern" => Tok::Extern,
                "intern" => Tok::Intern,
                "forall" => Tok::Forall,
                "exists" => Tok::Exists,
                "tag" => Tok::Tag,
                "case" => Tok::Case,
                "of" => Tok::Of,
                "begin" => Tok::Begin,
                "commit" => Tok::Commit,
                "abort" => Tok::Abort,
                "and" => Tok::And,
                "or" => Tok::Or,
                "not" => Tok::Not,
                "true" => Tok::Bool(true),
                "false" => Tok::Bool(false),
                _ => Tok::Ident(word.to_string()),
            };
            out.push(Spanned { tok, at });
            continue;
        }
        // symbols (longest first)
        let two = if i + 1 < b.len() { &src[i..i + 2] } else { "" };
        let tok2 = match two {
            "=>" => Some(Tok::FatArrow),
            "->" => Some(Tok::Arrow),
            "<=" => Some(Tok::Le),
            ">=" => Some(Tok::Ge),
            "==" => Some(Tok::EqEq),
            "<>" => Some(Tok::Ne),
            "++" => Some(Tok::PlusPlus),
            _ => None,
        };
        if let Some(t) = tok2 {
            out.push(Spanned { tok: t, at });
            i += 2;
            continue;
        }
        let tok1 = match c {
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'{' => Tok::LBrace,
            b'}' => Tok::RBrace,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b',' => Tok::Comma,
            b';' => Tok::Semi,
            b':' => Tok::Colon,
            b'.' => Tok::Dot,
            b'=' => Tok::Eq,
            b'<' => Tok::Lt,
            b'>' => Tok::Gt,
            b'+' => Tok::Plus,
            b'-' => Tok::Minus,
            b'*' => Tok::Star,
            b'/' => Tok::Slash,
            b'|' => Tok::Pipe,
            other => {
                return Err(LangError::lex(
                    at,
                    format!("unexpected character `{}`", other as char),
                ))
            }
        };
        out.push(Spanned { tok: tok1, at });
        i += 1;
    }
    out.push(Spanned {
        tok: Tok::Eof,
        at: src.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("let x = typeof d"),
            vec![
                Tok::Let,
                Tok::Ident("x".into()),
                Tok::Eq,
                Tok::Typeof,
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("1 2.5 10"),
            vec![Tok::Int(1), Tok::Float(2.5), Tok::Int(10), Tok::Eof]
        );
        // A dot not followed by a digit is field access.
        assert_eq!(toks("1.x")[0], Tok::Int(1));
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks("'J Doe'")[0], Tok::Str("J Doe".into()));
        assert_eq!(toks("'it''s'")[0], Tok::Str("it's".into()));
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("1 -- the rest\n2"),
            vec![Tok::Int(1), Tok::Int(2), Tok::Eof]
        );
    }

    #[test]
    fn two_char_symbols_beat_one_char() {
        assert_eq!(
            toks("<= < == = => -> ++ + <>"),
            vec![
                Tok::Le,
                Tok::Lt,
                Tok::EqEq,
                Tok::Eq,
                Tok::FatArrow,
                Tok::Arrow,
                Tok::PlusPlus,
                Tok::Plus,
                Tok::Ne,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn offsets_recorded() {
        let ts = lex("let  x").unwrap();
        assert_eq!(ts[0].at, 0);
        assert_eq!(ts[1].at, 5);
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(toks("'héllo'")[0], Tok::Str("héllo".into()));
    }
}
