//! Runtime values and environments for the MiniDBPL evaluator.
//!
//! Runtime values extend the storable [`Value`]s of `dbpl-values` with
//! closures and partially applied builtins, which exist only during
//! evaluation. Conversion to [`Value`] happens at the *database
//! boundaries* — `dynamic`, `put`, `extern` — where functions are
//! rejected: only data persists.

use crate::ast::Expr;
use crate::error::LangError;
use dbpl_types::Type;
use dbpl_values::{Oid, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// A lexical environment (persistent linked list, cheap to capture).
#[derive(Debug, Clone, Default)]
pub struct Env(Option<Rc<EnvNode>>);

#[derive(Debug)]
struct EnvNode {
    name: String,
    value: RtValue,
    next: Env,
}

impl Env {
    /// The empty environment.
    pub fn empty() -> Env {
        Env(None)
    }

    /// Extend with a binding.
    pub fn bind(&self, name: impl Into<String>, value: RtValue) -> Env {
        Env(Some(Rc::new(EnvNode {
            name: name.into(),
            value,
            next: self.clone(),
        })))
    }

    /// Look up a name.
    pub fn lookup(&self, name: &str) -> Option<&RtValue> {
        let mut cur = self;
        while let Some(node) = &cur.0 {
            if node.name == name {
                return Some(&node.value);
            }
            cur = &node.next;
        }
        None
    }
}

/// A user function (possibly recursive through `name`).
#[derive(Debug)]
pub struct Closure {
    /// For recursive functions, the name under which the closure can see
    /// itself.
    pub name: Option<String>,
    /// Parameter name.
    pub param: String,
    /// Body.
    pub body: Expr,
    /// Captured environment.
    pub env: Env,
}

/// A (possibly partially applied) builtin.
#[derive(Debug, Clone)]
pub struct Builtin {
    /// Builtin name (keys into the builtin table).
    pub name: &'static str,
    /// Collected type arguments.
    pub tyargs: Vec<Type>,
    /// Collected value arguments.
    pub args: Vec<RtValue>,
    /// Total number of value arguments required.
    pub arity: usize,
}

/// A runtime value.
#[derive(Debug, Clone)]
pub enum RtValue {
    /// Unit.
    Unit,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// List.
    List(Vec<RtValue>),
    /// Record.
    Record(BTreeMap<String, RtValue>),
    /// Tagged (variant) value.
    Tagged(String, Box<RtValue>),
    /// Dynamic: a value carrying its type.
    Dyn(Type, Rc<RtValue>),
    /// An object reference (appears when database values contain them).
    Ref(Oid),
    /// A user function.
    Closure(Rc<Closure>),
    /// A builtin (possibly partially applied).
    Builtin(Builtin),
    /// The session database token (the value of the global `db`).
    DbToken,
}

impl RtValue {
    /// Convert to a storable [`Value`]; fails on functions and the
    /// database token.
    pub fn to_value(&self, at: usize) -> Result<Value, LangError> {
        Ok(match self {
            RtValue::Unit => Value::Unit,
            RtValue::Bool(b) => Value::Bool(*b),
            RtValue::Int(i) => Value::Int(*i),
            RtValue::Float(x) => Value::float(*x),
            RtValue::Str(s) => Value::Str(s.clone()),
            RtValue::List(xs) => Value::List(
                xs.iter()
                    .map(|x| x.to_value(at))
                    .collect::<Result<_, _>>()?,
            ),
            RtValue::Record(fs) => Value::Record(
                fs.iter()
                    .map(|(l, v)| Ok((l.clone(), v.to_value(at)?)))
                    .collect::<Result<_, LangError>>()?,
            ),
            RtValue::Tagged(l, v) => Value::Tagged(l.clone(), Box::new(v.to_value(at)?)),
            RtValue::Dyn(t, v) => Value::dynamic(t.clone(), v.to_value(at)?),
            RtValue::Ref(o) => Value::Ref(*o),
            RtValue::Closure(_) | RtValue::Builtin(_) => {
                return Err(LangError::eval(
                    at,
                    "functions cannot be stored as data".to_string(),
                ))
            }
            RtValue::DbToken => {
                return Err(LangError::eval(
                    at,
                    "the database itself is not a storable value".to_string(),
                ))
            }
        })
    }

    /// Convert a storable value into a runtime value (always succeeds).
    pub fn from_value(v: &Value) -> RtValue {
        match v {
            Value::Unit => RtValue::Unit,
            Value::Bool(b) => RtValue::Bool(*b),
            Value::Int(i) => RtValue::Int(*i),
            Value::Float(x) => RtValue::Float(x.0),
            Value::Str(s) => RtValue::Str(s.clone()),
            Value::List(xs) => RtValue::List(xs.iter().map(RtValue::from_value).collect()),
            Value::Set(xs) => RtValue::List(xs.iter().map(RtValue::from_value).collect()),
            Value::Record(fs) => RtValue::Record(
                fs.iter()
                    .map(|(l, x)| (l.clone(), RtValue::from_value(x)))
                    .collect(),
            ),
            Value::Tagged(l, x) => RtValue::Tagged(l.clone(), Box::new(RtValue::from_value(x))),
            Value::Dyn(d) => RtValue::Dyn(d.ty.clone(), Rc::new(RtValue::from_value(&d.value))),
            Value::Ref(o) => RtValue::Ref(*o),
        }
    }

    /// Structural equality on data; functions are never equal.
    pub fn data_eq(&self, other: &RtValue) -> Option<bool> {
        match (self, other) {
            (RtValue::Unit, RtValue::Unit) => Some(true),
            (RtValue::Bool(a), RtValue::Bool(b)) => Some(a == b),
            (RtValue::Int(a), RtValue::Int(b)) => Some(a == b),
            (RtValue::Float(a), RtValue::Float(b)) => Some(a == b),
            (RtValue::Int(a), RtValue::Float(b)) | (RtValue::Float(b), RtValue::Int(a)) => {
                Some(*a as f64 == *b)
            }
            (RtValue::Str(a), RtValue::Str(b)) => Some(a == b),
            (RtValue::Ref(a), RtValue::Ref(b)) => Some(a == b),
            (RtValue::List(a), RtValue::List(b)) => {
                if a.len() != b.len() {
                    return Some(false);
                }
                for (x, y) in a.iter().zip(b) {
                    match x.data_eq(y) {
                        Some(true) => {}
                        other => return other,
                    }
                }
                Some(true)
            }
            (RtValue::Record(a), RtValue::Record(b)) => {
                if a.len() != b.len() || !a.keys().eq(b.keys()) {
                    return Some(false);
                }
                for (x, y) in a.values().zip(b.values()) {
                    match x.data_eq(y) {
                        Some(true) => {}
                        other => return other,
                    }
                }
                Some(true)
            }
            (RtValue::Tagged(la, va), RtValue::Tagged(lb, vb)) => {
                if la != lb {
                    return Some(false);
                }
                va.data_eq(vb)
            }
            (RtValue::Dyn(ta, va), RtValue::Dyn(tb, vb)) => {
                if ta != tb {
                    return Some(false);
                }
                va.data_eq(vb)
            }
            _ => None,
        }
    }
}

impl fmt::Display for RtValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtValue::Unit => write!(f, "()"),
            RtValue::Bool(b) => write!(f, "{b}"),
            RtValue::Int(i) => write!(f, "{i}"),
            RtValue::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            RtValue::Str(s) => write!(f, "'{s}'"),
            RtValue::List(xs) => {
                write!(f, "[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            RtValue::Record(fs) => {
                write!(f, "{{")?;
                for (i, (l, v)) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l} = {v}")?;
                }
                write!(f, "}}")
            }
            RtValue::Tagged(l, v) => write!(f, "{l}({v})"),
            RtValue::Dyn(t, v) => write!(f, "dynamic({v} : {t})"),
            RtValue::Ref(o) => write!(f, "{o}"),
            RtValue::Closure(_) => write!(f, "<fn>"),
            RtValue::Builtin(b) => write!(f, "<builtin {}>", b.name),
            RtValue::DbToken => write!(f, "<database>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_lookup_shadows() {
        let env = Env::empty()
            .bind("x", RtValue::Int(1))
            .bind("x", RtValue::Int(2));
        assert!(matches!(env.lookup("x"), Some(RtValue::Int(2))));
        assert!(env.lookup("y").is_none());
    }

    #[test]
    fn value_roundtrip() {
        let v = Value::record([
            ("a", Value::Int(1)),
            ("b", Value::list([Value::str("x")])),
            ("d", Value::dynamic(Type::Int, Value::Int(3))),
        ]);
        let rt = RtValue::from_value(&v);
        assert_eq!(rt.to_value(0).unwrap(), v);
    }

    #[test]
    fn functions_do_not_convert() {
        let b = RtValue::Builtin(Builtin {
            name: "len",
            tyargs: vec![],
            args: vec![],
            arity: 1,
        });
        assert!(b.to_value(0).is_err());
        assert!(RtValue::DbToken.to_value(0).is_err());
    }

    #[test]
    fn data_eq_numeric_widening() {
        assert_eq!(RtValue::Int(3).data_eq(&RtValue::Float(3.0)), Some(true));
        assert_eq!(RtValue::Int(3).data_eq(&RtValue::Float(3.5)), Some(false));
        let f = RtValue::Builtin(Builtin {
            name: "len",
            tyargs: vec![],
            args: vec![],
            arity: 1,
        });
        assert_eq!(f.data_eq(&f), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(RtValue::List(vec![RtValue::Int(1)]).to_string(), "[1]");
        assert_eq!(RtValue::Float(2.0).to_string(), "2.0");
        let r = RtValue::Record(BTreeMap::from([("a".to_string(), RtValue::Unit)]));
        assert_eq!(r.to_string(), "{a = ()}");
    }
}
