//! The static type checker.
//!
//! "In the belief that, for databases, type-checking is one of the best
//! techniques for ensuring program correctness, our main concern will be
//! with languages whose type system is designed for predominantly *static*
//! type-checking in the tradition of Pascal" — extended, as the paper
//! requires, with subtyping (records by width and depth), explicit bounded
//! polymorphism (`fun f[t <= Person](x: t): t`), and the `Dynamic` escape
//! hatch whose `coerce` is the only dynamically checked operation.

use crate::ast::{BinOp, Expr, ExprKind, Item, Program};
use crate::builtins::{builtin, DATABASE};
use crate::error::LangError;
use dbpl_types::{is_subtype_with, join, TyVar, Type, TypeEnv};
use std::collections::BTreeMap;

/// The result of checking a program: the (possibly extended) type
/// environment and the types of the top-level bindings, in order.
pub struct Checked {
    /// Type environment after all `type` declarations.
    pub env: TypeEnv,
    /// `(name, type)` for every top-level `let`/`fun`.
    pub bindings: Vec<(String, Type)>,
}

/// Check a whole program against a starting environment.
pub fn check_program(prog: &Program, base_env: &TypeEnv) -> Result<Checked, LangError> {
    let mut ck = Checker {
        env: base_env.clone(),
        vars: Vec::new(),
        tyvars: BTreeMap::new(),
    };
    let mut bindings = Vec::new();
    for item in &prog.items {
        match item {
            Item::TypeDecl { at, name, ty } => {
                // Recursive definitions mention their own name: check
                // well-formedness with the name provisionally in scope
                // (contractivity is enforced by `declare` below).
                let mut prov = Checker {
                    env: ck.env.clone(),
                    vars: Vec::new(),
                    tyvars: ck.tyvars.clone(),
                };
                prov.env.redeclare(name.clone(), ty.clone());
                prov.wf(ty, *at)?;
                // Names abbreviate structures, so re-declaring a name at an
                // equivalent structure (e.g. the same `type` line in a later
                // program of the session) is a no-op; only a *conflicting*
                // redeclaration is an error.
                match ck.env.lookup(name) {
                    Some(existing) if dbpl_types::is_equiv(existing, ty, &ck.env) => {}
                    Some(_) => {
                        return Err(LangError::check(
                            *at,
                            format!("type `{name}` already declared with a different structure"),
                        ))
                    }
                    None => {
                        ck.env
                            .declare(name.clone(), ty.clone())
                            .map_err(|e| LangError::check(*at, e.to_string()))?;
                    }
                }
            }
            Item::Include { at, sub, sup } => {
                ck.env
                    .declare_subtype(sub.clone(), sup.clone())
                    .map_err(|e| LangError::check(*at, e.to_string()))?;
            }
            Item::Let {
                at,
                name,
                ann,
                expr,
            } => {
                let inferred = ck.infer(expr)?;
                let ty = match ann {
                    Some(want) => {
                        ck.wf(want, *at)?;
                        ck.require_subtype(&inferred, want, *at)?;
                        want.clone()
                    }
                    None => inferred,
                };
                ck.vars.push((name.clone(), ty.clone()));
                bindings.push((name.clone(), ty));
            }
            Item::FunDecl {
                at,
                name,
                tparams,
                params,
                result,
                body,
            } => {
                let ty = ck.check_fun(*at, name, tparams, params, result, body)?;
                ck.vars.push((name.clone(), ty.clone()));
                bindings.push((name.clone(), ty));
            }
            // Transaction delimiters have no static content; whether a
            // transaction is actually open is a run-time question.
            Item::Begin { .. } | Item::Commit { .. } | Item::Abort { .. } => {}
            Item::Expr(e) => {
                ck.infer(e)?;
            }
        }
    }
    Ok(Checked {
        env: ck.env,
        bindings,
    })
}

/// Infer the type of a standalone expression (for tests/REPL).
pub fn infer_expr(e: &Expr, env: &TypeEnv) -> Result<Type, LangError> {
    let mut ck = Checker {
        env: env.clone(),
        vars: Vec::new(),
        tyvars: BTreeMap::new(),
    };
    ck.infer(e)
}

struct Checker {
    env: TypeEnv,
    vars: Vec<(String, Type)>,
    tyvars: BTreeMap<TyVar, Option<Type>>,
}

impl Checker {
    // ---------- helpers ----------

    fn require_subtype(&self, got: &Type, want: &Type, at: usize) -> Result<(), LangError> {
        if is_subtype_with(got, want, &self.env, &self.tyvars) {
            Ok(())
        } else {
            Err(LangError::check(
                at,
                format!("expected {want}, found {got}"),
            ))
        }
    }

    /// Well-formedness: named types resolve (or are the abstract
    /// `Database`), variables are in scope.
    fn wf(&self, ty: &Type, at: usize) -> Result<(), LangError> {
        match ty {
            Type::Named(n) => {
                if n != DATABASE && self.env.lookup(n).is_none() {
                    return Err(LangError::check(at, format!("unknown type `{n}`")));
                }
                Ok(())
            }
            Type::Var(v) => {
                if self.tyvars.contains_key(v) {
                    Ok(())
                } else {
                    Err(LangError::check(
                        at,
                        format!("type variable `{v}` not in scope"),
                    ))
                }
            }
            Type::List(t) | Type::Set(t) => self.wf(t, at),
            Type::Fun(a, r) => {
                self.wf(a, at)?;
                self.wf(r, at)
            }
            Type::Record(fs) | Type::Variant(fs) => {
                for t in fs.values() {
                    self.wf(t, at)?;
                }
                Ok(())
            }
            Type::Forall(q) | Type::Exists(q) => {
                if let Some(b) = &q.bound {
                    self.wf(b, at)?;
                }
                let mut inner = Checker {
                    env: self.env.clone(),
                    vars: Vec::new(),
                    tyvars: self.tyvars.clone(),
                };
                inner
                    .tyvars
                    .insert(q.var.clone(), q.bound.as_deref().cloned());
                inner.wf(&q.body, at)
            }
            _ => Ok(()),
        }
    }

    /// Repeatedly resolve names and promote variables to their bounds
    /// until a structural head appears.
    fn head(&self, ty: &Type, at: usize) -> Result<Type, LangError> {
        let mut cur = ty.clone();
        for _ in 0..64 {
            match cur {
                Type::Named(ref n) => {
                    if n == DATABASE {
                        return Ok(cur);
                    }
                    cur = self
                        .env
                        .lookup(n)
                        .cloned()
                        .ok_or_else(|| LangError::check(at, format!("unknown type `{n}`")))?;
                }
                Type::Var(ref v) => match self.tyvars.get(v) {
                    Some(Some(b)) => cur = b.clone(),
                    _ => return Ok(cur),
                },
                _ => return Ok(cur),
            }
        }
        Err(LangError::check(
            at,
            "type resolution did not terminate".to_string(),
        ))
    }

    fn lookup_var(&self, name: &str, at: usize) -> Result<Type, LangError> {
        if let Some((_, t)) = self.vars.iter().rev().find(|(n, _)| n == name) {
            return Ok(t.clone());
        }
        if name == "db" {
            return Ok(Type::named(DATABASE));
        }
        if let Some(sig) = builtin(name) {
            return Ok(sig.ty);
        }
        Err(LangError::check(at, format!("unbound variable `{name}`")))
    }

    fn check_fun(
        &mut self,
        at: usize,
        name: &str,
        tparams: &[(String, Option<Type>)],
        params: &[(String, Type)],
        result: &Type,
        body: &Expr,
    ) -> Result<Type, LangError> {
        if params.is_empty() {
            return Err(LangError::check(
                at,
                "functions need at least one parameter",
            ));
        }
        // Bring type parameters into scope.
        let saved_tyvars = self.tyvars.clone();
        for (v, b) in tparams {
            if let Some(b) = b {
                self.wf(b, at)?;
            }
            self.tyvars.insert(v.clone(), b.clone());
        }
        for (_, t) in params {
            self.wf(t, at)?;
        }
        self.wf(result, at)?;
        // The function's full type (for recursion and for the caller).
        let mut fun_ty = result.clone();
        for (_, t) in params.iter().rev() {
            fun_ty = Type::fun(t.clone(), fun_ty.clone());
        }
        for (v, b) in tparams.iter().rev() {
            fun_ty = Type::forall(v.clone(), b.clone(), fun_ty);
        }
        // Check the body with the function itself in scope (recursion).
        let saved_vars = self.vars.len();
        self.vars.push((name.to_string(), fun_ty.clone()));
        for (x, t) in params {
            self.vars.push((x.clone(), t.clone()));
        }
        let body_ty = self.infer(body)?;
        self.require_subtype(&body_ty, result, body.at)?;
        self.vars.truncate(saved_vars);
        self.tyvars = saved_tyvars;
        Ok(fun_ty)
    }

    /// Solve quantified variables by structural matching of a parameter
    /// *pattern* against a concrete argument type. Within one argument,
    /// repeated occurrences of a variable accumulate via [`join`];
    /// across *curried* arguments a variable is fixed by the first
    /// argument that mentions it (use explicit `f[T]` to widen).
    /// Positions that don't mention a variable contribute nothing — the
    /// final subtype check validates them.
    fn match_shape(
        &self,
        pattern: &Type,
        concrete: &Type,
        vars: &std::collections::BTreeSet<TyVar>,
        solution: &mut BTreeMap<TyVar, Type>,
        at: usize,
    ) -> Result<(), LangError> {
        match pattern {
            Type::Var(v) if vars.contains(v) => {
                let entry = solution.entry(v.clone()).or_insert(Type::Bottom);
                *entry = join(entry, concrete, &self.env);
                Ok(())
            }
            Type::List(pe) | Type::Set(pe) => match (pattern, self.head(concrete, at)?) {
                (Type::List(_), Type::List(ce)) | (Type::Set(_), Type::Set(ce)) => {
                    self.match_shape(pe, &ce, vars, solution, at)
                }
                _ => Ok(()),
            },
            Type::Fun(pa, pr) => {
                if let Type::Fun(ca, cr) = self.head(concrete, at)? {
                    self.match_shape(pa, &ca, vars, solution, at)?;
                    self.match_shape(pr, &cr, vars, solution, at)?;
                }
                Ok(())
            }
            Type::Record(pf) => {
                if let Type::Record(cf) = self.head(concrete, at)? {
                    for (l, pt) in pf {
                        if let Some(ct) = cf.get(l) {
                            self.match_shape(pt, ct, vars, solution, at)?;
                        }
                    }
                }
                Ok(())
            }
            Type::Variant(pf) => {
                if let Type::Variant(cf) = self.head(concrete, at)? {
                    for (l, pt) in pf {
                        if let Some(ct) = cf.get(l) {
                            self.match_shape(pt, ct, vars, solution, at)?;
                        }
                    }
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    // ---------- inference ----------

    fn infer(&mut self, e: &Expr) -> Result<Type, LangError> {
        let at = e.at;
        match &e.node {
            ExprKind::Int(_) => Ok(Type::Int),
            ExprKind::Float(_) => Ok(Type::Float),
            ExprKind::Str(_) => Ok(Type::Str),
            ExprKind::Bool(_) => Ok(Type::Bool),
            ExprKind::Unit => Ok(Type::Unit),
            ExprKind::Var(x) => self.lookup_var(x, at),
            ExprKind::Record(fields) => {
                let mut fs = dbpl_types::Fields::new();
                for (l, fe) in fields {
                    let t = self.infer(fe)?;
                    if fs.insert(l.clone(), t).is_some() {
                        return Err(LangError::check(at, format!("duplicate field `{l}`")));
                    }
                }
                Ok(Type::Record(fs))
            }
            ExprKind::List(items) => {
                let mut elem = Type::Bottom;
                for it in items {
                    let t = self.infer(it)?;
                    elem = join(&elem, &t, &self.env);
                }
                Ok(Type::list(elem))
            }
            ExprKind::Field(base, l) => {
                let bt = self.infer(base)?;
                match self.head(&bt, at)? {
                    Type::Record(fs) => fs
                        .get(l)
                        .cloned()
                        .ok_or_else(|| LangError::check(at, format!("no field `{l}` in {bt}"))),
                    other => Err(LangError::check(
                        at,
                        format!("`{other}` is not a record (field `{l}`)"),
                    )),
                }
            }
            ExprKind::With(base, additions) => {
                let bt = self.infer(base)?;
                match self.head(&bt, at)? {
                    Type::Record(mut fs) => {
                        for (l, ae) in additions {
                            let t = self.infer(ae)?;
                            fs.insert(l.clone(), t);
                        }
                        Ok(Type::Record(fs))
                    }
                    other => Err(LangError::check(
                        at,
                        format!("`with` applies to records, not {other}"),
                    )),
                }
            }
            ExprKind::If(c, t, f) => {
                let ct = self.infer(c)?;
                self.require_subtype(&ct, &Type::Bool, c.at)?;
                let tt = self.infer(t)?;
                let ft = self.infer(f)?;
                Ok(join(&tt, &ft, &self.env))
            }
            ExprKind::Let(x, ann, bound, body) => {
                let bt = self.infer(bound)?;
                let xt = match ann {
                    Some(want) => {
                        self.wf(want, at)?;
                        self.require_subtype(&bt, want, bound.at)?;
                        want.clone()
                    }
                    None => bt,
                };
                self.vars.push((x.clone(), xt));
                let r = self.infer(body);
                self.vars.pop();
                r
            }
            ExprKind::Lambda(x, t, body) => {
                self.wf(t, at)?;
                self.vars.push((x.clone(), t.clone()));
                let bt = self.infer(body)?;
                self.vars.pop();
                Ok(Type::fun(t.clone(), bt))
            }
            ExprKind::App(f, a) => {
                let ft = self.infer(f)?;
                match self.head(&ft, at)? {
                    Type::Fun(p, r) => {
                        let at_arg = self.infer(a)?;
                        self.require_subtype(&at_arg, &p, a.at)?;
                        Ok(*r)
                    }
                    hd @ Type::Forall(_) => {
                        // Auto-instantiation: peel the quantifier prefix,
                        // infer the argument, and solve the type variables
                        // by matching the parameter's shape against the
                        // argument's type. (Explicit `f[T]` always remains
                        // available and is required when the argument does
                        // not determine the variables, e.g. `get`.)
                        let mut vars: Vec<(TyVar, Option<Type>)> = Vec::new();
                        let mut body = hd;
                        while let Type::Forall(q) = body {
                            vars.push((q.var.clone(), q.bound.as_deref().cloned()));
                            body = *q.body;
                        }
                        let Type::Fun(p, r) = body else {
                            return Err(LangError::check(
                                at,
                                format!("polymorphic value of type {ft} is not a function"),
                            ));
                        };
                        let arg_ty = self.infer(a)?;
                        let var_set: std::collections::BTreeSet<TyVar> =
                            vars.iter().map(|(v, _)| v.clone()).collect();
                        let mut solution: BTreeMap<TyVar, Type> = BTreeMap::new();
                        self.match_shape(&p, &arg_ty, &var_set, &mut solution, a.at)?;
                        for (v, bound) in &vars {
                            let solved = solution.get(v).ok_or_else(|| {
                                LangError::check(
                                    at,
                                    format!(
                                        "cannot infer type argument `{v}` here; \
                                         apply it explicitly with `[T]`"
                                    ),
                                )
                            })?;
                            if let Some(b) = bound {
                                self.require_subtype(solved, b, at)?;
                            }
                        }
                        let mut pi = *p;
                        let mut ri = *r;
                        for (v, t) in &solution {
                            pi = pi.subst(v, t);
                            ri = ri.subst(v, t);
                        }
                        self.require_subtype(&arg_ty, &pi, a.at)?;
                        Ok(ri)
                    }
                    other => Err(LangError::check(at, format!("cannot apply a {other}"))),
                }
            }
            ExprKind::TyApp(f, targ) => {
                self.wf(targ, at)?;
                let ft = self.infer(f)?;
                match self.head(&ft, at)? {
                    Type::Forall(q) => {
                        if let Some(b) = &q.bound {
                            self.require_subtype(targ, b, at)?;
                        }
                        Ok(q.body.subst(&q.var, targ))
                    }
                    other => Err(LangError::check(
                        at,
                        format!("`{other}` is not polymorphic"),
                    )),
                }
            }
            ExprKind::Bin(op, l, r) => self.infer_bin(*op, l, r, at),
            ExprKind::Not(x) => {
                let t = self.infer(x)?;
                self.require_subtype(&t, &Type::Bool, x.at)?;
                Ok(Type::Bool)
            }
            ExprKind::Neg(x) => {
                let t = self.infer(x)?;
                self.require_subtype(&t, &Type::Float, x.at)?;
                Ok(self.head(&t, at)?)
            }
            ExprKind::DynamicE(x) => {
                let t = self.infer(x)?;
                if !persistable(&t) {
                    return Err(LangError::check(
                        x.at,
                        format!("type {t} contains functions and cannot be made dynamic"),
                    ));
                }
                Ok(Type::Dynamic)
            }
            ExprKind::CoerceE(x, want) => {
                self.wf(want, at)?;
                let t = self.infer(x)?;
                self.require_subtype(&t, &Type::Dynamic, x.at)?;
                Ok(want.clone())
            }
            ExprKind::TypeofE(x) => {
                let t = self.infer(x)?;
                self.require_subtype(&t, &Type::Dynamic, x.at)?;
                Ok(Type::Str)
            }
            ExprKind::ExternE(h, v) => {
                let ht = self.infer(h)?;
                self.require_subtype(&ht, &Type::Str, h.at)?;
                let vt = self.infer(v)?;
                self.require_subtype(&vt, &Type::Dynamic, v.at)?;
                Ok(Type::Unit)
            }
            ExprKind::InternE(h) => {
                let ht = self.infer(h)?;
                self.require_subtype(&ht, &Type::Str, h.at)?;
                Ok(Type::Dynamic)
            }
            ExprKind::TagE(label, payload) => {
                let t = self.infer(payload)?;
                Ok(Type::variant([(label.clone(), t)]))
            }
            ExprKind::CaseE(scrutinee, arms) => {
                let st = self.infer(scrutinee)?;
                let variant_arms = match self.head(&st, scrutinee.at)? {
                    Type::Variant(fs) => fs,
                    other => {
                        return Err(LangError::check(
                            scrutinee.at,
                            format!("`case` scrutinee must be a variant, found {other}"),
                        ))
                    }
                };
                // Exhaustiveness: every arm of the variant must be
                // handled; handling an arm the variant lacks is an error
                // (it could never fire).
                let mut covered = std::collections::BTreeSet::new();
                let mut result = Type::Bottom;
                for (label, binder, body) in arms {
                    let payload_ty = variant_arms.get(label).cloned().ok_or_else(|| {
                        LangError::check(body.at, format!("variant {st} has no arm `{label}`"))
                    })?;
                    if !covered.insert(label.clone()) {
                        return Err(LangError::check(
                            body.at,
                            format!("arm `{label}` handled twice"),
                        ));
                    }
                    self.vars.push((binder.clone(), payload_ty));
                    let bt = self.infer(body)?;
                    self.vars.pop();
                    result = join(&result, &bt, &self.env);
                }
                for missing in variant_arms.keys() {
                    if !covered.contains(missing) {
                        return Err(LangError::check(
                            at,
                            format!("non-exhaustive case: arm `{missing}` not handled"),
                        ));
                    }
                }
                Ok(result)
            }
        }
    }

    fn infer_bin(&mut self, op: BinOp, l: &Expr, r: &Expr, at: usize) -> Result<Type, LangError> {
        let lt = self.infer(l)?;
        let rt = self.infer(r)?;
        let num = |ck: &Self, t: &Type, at: usize| -> Result<Type, LangError> {
            let h = ck.head(t, at)?;
            match h {
                Type::Int | Type::Float => Ok(h),
                other => Err(LangError::check(
                    at,
                    format!("expected a number, found {other}"),
                )),
            }
        };
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                let a = num(self, &lt, l.at)?;
                let b = num(self, &rt, r.at)?;
                Ok(if a == Type::Float || b == Type::Float {
                    Type::Float
                } else {
                    Type::Int
                })
            }
            BinOp::Concat => {
                self.require_subtype(&lt, &Type::Str, l.at)?;
                self.require_subtype(&rt, &Type::Str, r.at)?;
                Ok(Type::Str)
            }
            BinOp::Eq | BinOp::Ne => {
                // Comparable: one side's type must subsume the other's.
                if is_subtype_with(&lt, &rt, &self.env, &self.tyvars)
                    || is_subtype_with(&rt, &lt, &self.env, &self.tyvars)
                {
                    Ok(Type::Bool)
                } else {
                    Err(LangError::check(
                        at,
                        format!("cannot compare {lt} with {rt}"),
                    ))
                }
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let both_str =
                    self.head(&lt, l.at)? == Type::Str && self.head(&rt, r.at)? == Type::Str;
                if !both_str {
                    num(self, &lt, l.at)?;
                    num(self, &rt, r.at)?;
                }
                Ok(Type::Bool)
            }
            BinOp::And | BinOp::Or => {
                self.require_subtype(&lt, &Type::Bool, l.at)?;
                self.require_subtype(&rt, &Type::Bool, r.at)?;
                Ok(Type::Bool)
            }
        }
    }
}

/// Can values of this type be converted to storable data (no functions)?
fn persistable(ty: &Type) -> bool {
    match ty {
        Type::Fun(_, _) | Type::Forall(_) => false,
        Type::Named(n) if n == DATABASE => false,
        Type::List(t) | Type::Set(t) => persistable(t),
        Type::Record(fs) | Type::Variant(fs) => fs.values().all(persistable),
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    fn env() -> TypeEnv {
        let mut e = TypeEnv::new();
        e.declare("Person", dbpl_types::parse_type("{Name: Str}").unwrap())
            .unwrap();
        e.declare(
            "Employee",
            dbpl_types::parse_type("{Name: Str, Empno: Int}").unwrap(),
        )
        .unwrap();
        e
    }

    fn ty_of(src: &str) -> Result<Type, LangError> {
        infer_expr(&parse_expr(src).unwrap(), &env())
    }

    #[test]
    fn literals_and_arithmetic() {
        assert_eq!(ty_of("1 + 2").unwrap(), Type::Int);
        assert_eq!(ty_of("1 + 2.5").unwrap(), Type::Float);
        assert_eq!(ty_of("'a' ++ 'b'").unwrap(), Type::Str);
        assert!(ty_of("1 + 'a'").is_err());
        assert_eq!(ty_of("-(3)").unwrap(), Type::Int);
        assert_eq!(ty_of("not true").unwrap(), Type::Bool);
    }

    #[test]
    fn records_and_fields() {
        assert_eq!(ty_of("{Name = 'd', Age = 3}.Age").unwrap(), Type::Int);
        assert!(ty_of("{Name = 'd'}.Missing").is_err());
        assert!(ty_of("(3).Name").is_err());
    }

    #[test]
    fn with_extends_the_type() {
        let t = ty_of("{Name = 'd'} with {Empno = 1}").unwrap();
        assert_eq!(
            t,
            dbpl_types::parse_type("{Name: Str, Empno: Int}").unwrap()
        );
    }

    #[test]
    fn subsumption_at_annotations() {
        // An Employee record can be bound at type Person.
        let p = parse_program("let p: Person = {Name = 'd', Empno = 1}").unwrap();
        assert!(check_program(&p, &env()).is_ok());
        let bad = parse_program("let p: Employee = {Name = 'd'}").unwrap();
        assert!(check_program(&bad, &env()).is_err());
    }

    #[test]
    fn if_joins_branches() {
        // Employee-ish and Student-ish join at their common fields.
        let t = ty_of("if true then {Name = 'a', Empno = 1} else {Name = 'b', Gpa = 3.5}").unwrap();
        assert_eq!(t, dbpl_types::parse_type("{Name: Str}").unwrap());
        assert!(ty_of("if 3 then 1 else 2").is_err());
    }

    #[test]
    fn lambdas_and_application() {
        assert_eq!(ty_of("(fn(x: Int) => x + 1)(41)").unwrap(), Type::Int);
        // Contravariance: a Person-accepting function accepts an Employee.
        assert_eq!(
            ty_of("(fn(p: Person) => p.Name)({Name = 'e', Empno = 7})").unwrap(),
            Type::Str
        );
        assert!(ty_of("(fn(p: Employee) => p.Empno)({Name = 'x'})").is_err());
        assert!(ty_of("(3)(4)").is_err());
    }

    #[test]
    fn polymorphic_functions_with_bounds() {
        let p = parse_program(
            "fun name[t <= Person](x: t): Str = x.Name\n\
             let a = name[Employee]({Name = 'e', Empno = 1})\n\
             let b = name[Person]({Name = 'p'})",
        )
        .unwrap();
        let checked = check_program(&p, &env()).unwrap();
        assert_eq!(checked.bindings[1].1, Type::Str);
        // Instantiating beyond the bound is rejected.
        let bad =
            parse_program("fun name[t <= Person](x: t): Str = x.Name\nlet a = name[Int]").unwrap();
        assert!(check_program(&bad, &env()).is_err());
    }

    #[test]
    fn bounded_variable_bodies_promote() {
        // Inside the body, x: t with t ≤ Person supports `.Name` —
        // variable promotion through the bound.
        let p = parse_program("fun f[t <= Employee](x: t): Int = x.Empno").unwrap();
        assert!(check_program(&p, &env()).is_ok());
        let bad = parse_program("fun f[t <= Person](x: t): Int = x.Empno").unwrap();
        assert!(
            check_program(&bad, &env()).is_err(),
            "bound doesn't expose Empno"
        );
    }

    #[test]
    fn recursion_typechecks() {
        let p =
            parse_program("fun fact(n: Int): Int = if n <= 1 then 1 else n * fact(n - 1)").unwrap();
        assert!(check_program(&p, &env()).is_ok());
    }

    #[test]
    fn dynamic_coerce_typeof() {
        assert_eq!(ty_of("dynamic 3").unwrap(), Type::Dynamic);
        assert_eq!(ty_of("coerce (dynamic 3) to Int").unwrap(), Type::Int);
        assert_eq!(ty_of("typeof (dynamic 3)").unwrap(), Type::Str);
        assert!(ty_of("coerce 3 to Int").is_err(), "coerce needs a Dynamic");
        assert!(ty_of("typeof 3").is_err());
        assert!(
            ty_of("dynamic (fn(x: Int) => x)").is_err(),
            "functions not dynamic"
        );
    }

    #[test]
    fn builtins_are_typed() {
        assert_eq!(ty_of("len[Int]([1, 2])").unwrap(), Type::Int);
        assert_eq!(
            ty_of("cons[Int](1, [2, 3])").unwrap(),
            Type::list(Type::Int)
        );
        assert_eq!(
            ty_of("map[Int][Str](fn(x: Int) => 'a', [1])").unwrap(),
            Type::list(Type::Str)
        );
        // Auto-instantiation solves the type argument from the argument.
        assert_eq!(ty_of("len([1])").unwrap(), Type::Int);
    }

    #[test]
    fn auto_instantiation() {
        // One variable, from a list argument.
        assert_eq!(ty_of("len([1, 2])").unwrap(), Type::Int);
        // Within one argument, repeated occurrences join; but calls are
        // curried, so a variable is *fixed* by the first argument that
        // mentions it: cons(1, …) pins a = Int, and a Float list no
        // longer fits — explicit `cons[Float]` handles that case.
        assert_eq!(ty_of("cons(1, [2])").unwrap(), Type::list(Type::Int));
        assert_eq!(ty_of("cons(1.0, [2.5])").unwrap(), Type::list(Type::Float));
        assert!(ty_of("cons(1, [2.5])").is_err());
        assert_eq!(
            ty_of("cons[Float](1, [2.5])").unwrap(),
            Type::list(Type::Float)
        );
        // Two variables, solved from a function argument (curried calls).
        assert_eq!(
            ty_of("map(fn(x: Int) => 'a', [1])").unwrap(),
            Type::list(Type::Str)
        );
        assert_eq!(
            ty_of("filter(fn(x: Int) => x > 1, [1, 2])").unwrap(),
            Type::list(Type::Int)
        );
        // Under-determined variables still demand explicit application.
        let err = ty_of("get(db)").unwrap_err();
        assert!(err.msg.contains("explicitly"), "{err}");
        // User polymorphic functions auto-instantiate too, respecting
        // their bounds.
        let p = crate::parser::parse_program(
            "fun name[t <= Person](x: t): Str = x.Name\nlet a = name({Name = 'e', Empno = 1})",
        )
        .unwrap();
        let checked = check_program(&p, &env()).unwrap();
        assert_eq!(checked.bindings[1].1, Type::Str);
        // ...and reject out-of-bound solutions.
        let bad = crate::parser::parse_program(
            "fun name[t <= Person](x: t): Str = x.Name\nlet a = name(42)",
        )
        .unwrap();
        assert!(check_program(&bad, &env()).is_err());
    }

    #[test]
    fn get_requires_database_and_returns_list() {
        let t = ty_of("get[Employee](db)").unwrap();
        assert_eq!(t, Type::list(Type::named("Employee")));
        assert!(ty_of("get[Employee](3)").is_err());
    }

    #[test]
    fn persistence_forms_are_typed() {
        assert_eq!(ty_of("extern('H', dynamic 3)").unwrap(), Type::Unit);
        assert_eq!(ty_of("intern('H')").unwrap(), Type::Dynamic);
        assert!(ty_of("extern(3, dynamic 3)").is_err());
        assert!(ty_of("extern('H', 3)").is_err());
        assert!(ty_of("intern(42)").is_err());
    }

    #[test]
    fn include_requires_declared_compatibility() {
        let p = parse_program(
            "type Rock = {Mass: Float}\n\
             include Rock in Person",
        )
        .unwrap();
        assert!(check_program(&p, &env()).is_err());
        let ok = parse_program("include Employee in Person").unwrap();
        assert!(check_program(&ok, &env()).is_ok());
    }

    #[test]
    fn unknown_types_and_vars_are_reported() {
        assert!(ty_of("ghost").is_err());
        let p = parse_program("let x: Ghost = 1").unwrap();
        assert!(check_program(&p, &env()).is_err());
        let q = parse_program("fun f(x: t): t = x").unwrap();
        assert!(check_program(&q, &env()).is_err(), "free type variable");
    }

    #[test]
    fn equality_needs_related_types() {
        assert_eq!(ty_of("1 == 2").unwrap(), Type::Bool);
        assert_eq!(
            ty_of("{Name = 'a'} == {Name = 'b', Empno = 1}").unwrap(),
            Type::Bool
        );
        assert!(ty_of("1 == 'a'").is_err());
    }
}
