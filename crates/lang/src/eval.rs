//! The tree-walking evaluator.
//!
//! Static checking has already happened; the only *type* checks performed
//! at run time are the ones the paper requires to be dynamic — the
//! subtype test inside `coerce` (which raises the paper's "run-time
//! exception" on mismatch) and the per-element test inside `get`.

use crate::ast::{BinOp, Expr, ExprKind};
use crate::error::LangError;
use crate::rt::{Builtin, Closure, Env, RtValue};
use crate::session::Session;
use dbpl_types::{is_subtype, Type};
use dbpl_values::DynValue;
use std::rc::Rc;

/// Evaluate an expression in an environment against a session.
pub fn eval(e: &Expr, env: &Env, s: &mut Session) -> Result<RtValue, LangError> {
    let at = e.at;
    match &e.node {
        ExprKind::Int(i) => Ok(RtValue::Int(*i)),
        ExprKind::Float(x) => Ok(RtValue::Float(*x)),
        ExprKind::Str(st) => Ok(RtValue::Str(st.clone())),
        ExprKind::Bool(b) => Ok(RtValue::Bool(*b)),
        ExprKind::Unit => Ok(RtValue::Unit),
        ExprKind::Var(x) => {
            if let Some(v) = env.lookup(x) {
                return Ok(v.clone());
            }
            if x == "db" {
                return Ok(RtValue::DbToken);
            }
            if let Some(sig) = crate::builtins::builtin(x) {
                return Ok(RtValue::Builtin(Builtin {
                    name: sig.name,
                    tyargs: Vec::new(),
                    args: Vec::new(),
                    arity: sig.arity,
                }));
            }
            Err(LangError::eval(at, format!("unbound variable `{x}`")))
        }
        ExprKind::Record(fields) => {
            let mut fs = std::collections::BTreeMap::new();
            for (l, fe) in fields {
                fs.insert(l.clone(), eval(fe, env, s)?);
            }
            Ok(RtValue::Record(fs))
        }
        ExprKind::List(items) => {
            let mut xs = Vec::with_capacity(items.len());
            for it in items {
                xs.push(eval(it, env, s)?);
            }
            Ok(RtValue::List(xs))
        }
        ExprKind::Field(base, l) => match eval(base, env, s)? {
            RtValue::Record(fs) => fs
                .get(l)
                .cloned()
                .ok_or_else(|| LangError::eval(at, format!("record has no field `{l}`"))),
            other => Err(LangError::eval(at, format!("`{other}` is not a record"))),
        },
        ExprKind::With(base, additions) => match eval(base, env, s)? {
            RtValue::Record(mut fs) => {
                for (l, ae) in additions {
                    let v = eval(ae, env, s)?;
                    fs.insert(l.clone(), v);
                }
                Ok(RtValue::Record(fs))
            }
            other => Err(LangError::eval(
                at,
                format!("`with` applies to records, not {other}"),
            )),
        },
        ExprKind::If(c, t, f) => match eval(c, env, s)? {
            RtValue::Bool(true) => eval(t, env, s),
            RtValue::Bool(false) => eval(f, env, s),
            other => Err(LangError::eval(
                c.at,
                format!("condition was {other}, not a boolean"),
            )),
        },
        ExprKind::Let(x, _, bound, body) => {
            let v = eval(bound, env, s)?;
            let inner = env.bind(x.clone(), v);
            eval(body, &inner, s)
        }
        ExprKind::Lambda(x, _, body) => Ok(RtValue::Closure(Rc::new(Closure {
            name: None,
            param: x.clone(),
            body: (**body).clone(),
            env: env.clone(),
        }))),
        ExprKind::App(f, a) => {
            let fv = eval(f, env, s)?;
            let av = eval(a, env, s)?;
            apply(fv, av, at, s)
        }
        ExprKind::TyApp(f, t) => match eval(f, env, s)? {
            RtValue::Builtin(mut b) => {
                b.tyargs.push(t.clone());
                Ok(RtValue::Builtin(b))
            }
            // Type application on user functions is erased at run time.
            other => Ok(other),
        },
        ExprKind::Bin(op, l, r) => {
            // Short-circuit booleans first.
            match op {
                BinOp::And => {
                    return match eval(l, env, s)? {
                        RtValue::Bool(false) => Ok(RtValue::Bool(false)),
                        RtValue::Bool(true) => eval(r, env, s),
                        other => Err(LangError::eval(l.at, format!("`and` on {other}"))),
                    }
                }
                BinOp::Or => {
                    return match eval(l, env, s)? {
                        RtValue::Bool(true) => Ok(RtValue::Bool(true)),
                        RtValue::Bool(false) => eval(r, env, s),
                        other => Err(LangError::eval(l.at, format!("`or` on {other}"))),
                    }
                }
                _ => {}
            }
            let lv = eval(l, env, s)?;
            let rv = eval(r, env, s)?;
            bin_op(*op, lv, rv, at)
        }
        ExprKind::Not(x) => match eval(x, env, s)? {
            RtValue::Bool(b) => Ok(RtValue::Bool(!b)),
            other => Err(LangError::eval(x.at, format!("`not` on {other}"))),
        },
        ExprKind::Neg(x) => match eval(x, env, s)? {
            RtValue::Int(i) => Ok(RtValue::Int(-i)),
            RtValue::Float(f) => Ok(RtValue::Float(-f)),
            other => Err(LangError::eval(x.at, format!("negation of {other}"))),
        },
        ExprKind::DynamicE(x) => {
            let v = eval(x, env, s)?;
            let data = v.to_value(at)?;
            // The carried description is the value's principal type.
            let ty = dbpl_values::type_of(&data, s.db.env(), s.db.heap())
                .map_err(|e| LangError::eval(at, e.to_string()))?;
            Ok(RtValue::Dyn(ty, Rc::new(v)))
        }
        ExprKind::CoerceE(x, want) => match eval(x, env, s)? {
            RtValue::Dyn(carried, v) => {
                if is_subtype(&carried, want, s.db.env()) {
                    Ok((*v).clone())
                } else {
                    // The paper's run-time exception.
                    Err(LangError::eval(
                        at,
                        format!("coerce failed: dynamic value carries {carried}, wanted {want}"),
                    ))
                }
            }
            other => Err(LangError::eval(
                x.at,
                format!("coerce of non-dynamic {other}"),
            )),
        },
        ExprKind::TypeofE(x) => match eval(x, env, s)? {
            RtValue::Dyn(t, _) => Ok(RtValue::Str(t.to_string())),
            other => Err(LangError::eval(
                x.at,
                format!("typeof of non-dynamic {other}"),
            )),
        },
        ExprKind::ExternE(h, v) => {
            let handle = match eval(h, env, s)? {
                RtValue::Str(st) => st,
                other => return Err(LangError::eval(h.at, format!("handle was {other}"))),
            };
            match eval(v, env, s)? {
                RtValue::Dyn(t, inner) => {
                    let d = DynValue::new(t, inner.to_value(v.at)?);
                    // Staged in the session's open transaction; durable
                    // only once that transaction commits.
                    s.stage_extern(&handle, &d)
                        .map_err(|e| LangError::eval(at, e.to_string()))?;
                    Ok(RtValue::Unit)
                }
                other => Err(LangError::eval(
                    v.at,
                    format!("extern of non-dynamic {other}"),
                )),
            }
        }
        ExprKind::InternE(h) => {
            let handle = match eval(h, env, s)? {
                RtValue::Str(st) => st,
                other => return Err(LangError::eval(h.at, format!("handle was {other}"))),
            };
            // Reads through the open transaction's staged externs first
            // (read-your-writes), then the store; a corrupt unit is
            // quarantined in the session diagnostics as a side effect.
            let d = s
                .intern_staged(&handle)
                .map_err(|e| LangError::eval(at, e.to_string()))?;
            Ok(RtValue::Dyn(d.ty, Rc::new(RtValue::from_value(&d.value))))
        }
        ExprKind::TagE(label, payload) => {
            let v = eval(payload, env, s)?;
            Ok(RtValue::Tagged(label.clone(), Box::new(v)))
        }
        ExprKind::CaseE(scrutinee, arms) => match eval(scrutinee, env, s)? {
            RtValue::Tagged(label, payload) => {
                for (arm_label, binder, body) in arms {
                    if arm_label == &label {
                        let inner = env.bind(binder.clone(), *payload);
                        return eval(body, &inner, s);
                    }
                }
                Err(LangError::eval(
                    at,
                    format!("no case arm for tag `{label}`"),
                ))
            }
            other => Err(LangError::eval(
                scrutinee.at,
                format!("`case` on non-variant {other}"),
            )),
        },
    }
}

/// Apply a function value to an argument.
pub fn apply(f: RtValue, arg: RtValue, at: usize, s: &mut Session) -> Result<RtValue, LangError> {
    match f {
        RtValue::Closure(c) => {
            let mut env = c.env.clone();
            if let Some(name) = &c.name {
                env = env.bind(name.clone(), RtValue::Closure(c.clone()));
            }
            let env = env.bind(c.param.clone(), arg);
            eval(&c.body, &env, s)
        }
        RtValue::Builtin(mut b) => {
            b.args.push(arg);
            if b.args.len() >= b.arity {
                exec_builtin(b, at, s)
            } else {
                Ok(RtValue::Builtin(b))
            }
        }
        other => Err(LangError::eval(at, format!("cannot apply `{other}`"))),
    }
}

fn bin_op(op: BinOp, l: RtValue, r: RtValue, at: usize) -> Result<RtValue, LangError> {
    use RtValue::*;
    let num = |v: &RtValue| -> Option<f64> {
        match v {
            Int(i) => Some(*i as f64),
            Float(x) => Some(*x),
            _ => None,
        }
    };
    let both_int = matches!((&l, &r), (Int(_), Int(_)));
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
            let (a, b) = match (num(&l), num(&r)) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err(LangError::eval(at, format!("arithmetic on {l} and {r}"))),
            };
            if both_int {
                let (a, b) = (a as i64, b as i64);
                let v = match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return Err(LangError::eval(at, "division by zero".to_string()));
                        }
                        a / b
                    }
                    _ => unreachable!(),
                };
                Ok(Int(v))
            } else {
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    _ => unreachable!(),
                };
                Ok(Float(v))
            }
        }
        BinOp::Concat => match (l, r) {
            (Str(a), Str(b)) => Ok(Str(a + &b)),
            (l, r) => Err(LangError::eval(at, format!("`++` on {l} and {r}"))),
        },
        BinOp::Eq | BinOp::Ne => {
            let eq = l
                .data_eq(&r)
                .ok_or_else(|| LangError::eval(at, "cannot compare functions".to_string()))?;
            Ok(Bool(if op == BinOp::Eq { eq } else { !eq }))
        }
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ord = match (&l, &r) {
                (Str(a), Str(b)) => a.cmp(b),
                _ => match (num(&l), num(&r)) {
                    (Some(a), Some(b)) => a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal),
                    _ => return Err(LangError::eval(at, format!("ordering on {l} and {r}"))),
                },
            };
            use std::cmp::Ordering::*;
            Ok(Bool(match op {
                BinOp::Lt => ord == Less,
                BinOp::Le => ord != Greater,
                BinOp::Gt => ord == Greater,
                BinOp::Ge => ord != Less,
                _ => unreachable!(),
            }))
        }
        BinOp::And | BinOp::Or => unreachable!("short-circuited in eval"),
    }
}

fn exec_builtin(b: Builtin, at: usize, s: &mut Session) -> Result<RtValue, LangError> {
    let Builtin {
        name,
        tyargs,
        mut args,
        ..
    } = b;
    let list_arg = |v: &RtValue, at: usize| -> Result<Vec<RtValue>, LangError> {
        match v {
            RtValue::List(xs) => Ok(xs.clone()),
            other => Err(LangError::eval(
                at,
                format!("expected a list, found {other}"),
            )),
        }
    };
    match name {
        "print" => {
            let v = args.remove(0);
            s.out.push(v.to_string());
            Ok(RtValue::Unit)
        }
        "str" => Ok(RtValue::Str(args.remove(0).to_string())),
        "panic" => {
            let msg = match args.remove(0) {
                RtValue::Str(m) => m,
                other => other.to_string(),
            };
            panic!("{msg}");
        }
        "get" => {
            let bound = tyargs
                .first()
                .cloned()
                .ok_or_else(|| LangError::eval(at, "get needs a type argument".to_string()))?;
            match args.remove(0) {
                RtValue::DbToken => {
                    let pkgs = s.db.get(&bound);
                    Ok(RtValue::List(
                        pkgs.iter().map(|p| RtValue::from_value(p.open())).collect(),
                    ))
                }
                other => Err(LangError::eval(at, format!("get on non-database {other}"))),
            }
        }
        "put" => {
            let value = args.remove(1);
            let dbtok = args.remove(0);
            if !matches!(dbtok, RtValue::DbToken) {
                return Err(LangError::eval(at, "put needs the database".to_string()));
            }
            match value {
                RtValue::Dyn(t, v) => {
                    let data = v.to_value(at)?;
                    s.db.put(t, data)
                        .map_err(|e| LangError::eval(at, e.to_string()))?;
                    Ok(RtValue::Unit)
                }
                other => Err(LangError::eval(at, format!("put of non-dynamic {other}"))),
            }
        }
        "cons" => {
            let xs = list_arg(&args[1], at)?;
            let mut out = vec![args[0].clone()];
            out.extend(xs);
            Ok(RtValue::List(out))
        }
        "head" => {
            let xs = list_arg(&args[0], at)?;
            xs.into_iter()
                .next()
                .ok_or_else(|| LangError::eval(at, "head of empty list"))
        }
        "tail" => {
            let xs = list_arg(&args[0], at)?;
            if xs.is_empty() {
                return Err(LangError::eval(at, "tail of empty list".to_string()));
            }
            Ok(RtValue::List(xs[1..].to_vec()))
        }
        "isEmpty" => Ok(RtValue::Bool(list_arg(&args[0], at)?.is_empty())),
        "len" => Ok(RtValue::Int(list_arg(&args[0], at)?.len() as i64)),
        "append" => {
            let mut xs = list_arg(&args[0], at)?;
            xs.extend(list_arg(&args[1], at)?);
            Ok(RtValue::List(xs))
        }
        "map" => {
            let f = args[0].clone();
            let xs = list_arg(&args[1], at)?;
            let mut out = Vec::with_capacity(xs.len());
            for x in xs {
                out.push(apply(f.clone(), x, at, s)?);
            }
            Ok(RtValue::List(out))
        }
        "filter" => {
            let f = args[0].clone();
            let xs = list_arg(&args[1], at)?;
            let mut out = Vec::new();
            for x in xs {
                match apply(f.clone(), x.clone(), at, s)? {
                    RtValue::Bool(true) => out.push(x),
                    RtValue::Bool(false) => {}
                    other => {
                        return Err(LangError::eval(
                            at,
                            format!("filter predicate returned {other}"),
                        ))
                    }
                }
            }
            Ok(RtValue::List(out))
        }
        "fold" => {
            let f = args[0].clone();
            let mut acc = args[1].clone();
            let xs = list_arg(&args[2], at)?;
            for x in xs {
                let partial = apply(f.clone(), acc, at, s)?;
                acc = apply(partial, x, at, s)?;
            }
            Ok(acc)
        }
        "reverse" => {
            let mut xs = list_arg(&args[0], at)?;
            xs.reverse();
            Ok(RtValue::List(xs))
        }
        "distinct" => {
            let xs = list_arg(&args[0], at)?;
            let mut out: Vec<RtValue> = Vec::new();
            for x in xs {
                let dup = out.iter().any(|y| y.data_eq(&x) == Some(true));
                if !dup {
                    out.push(x);
                }
            }
            Ok(RtValue::List(out))
        }
        "range" => {
            let (lo, hi) = match (&args[0], &args[1]) {
                (RtValue::Int(a), RtValue::Int(b)) => (*a, *b),
                _ => return Err(LangError::eval(at, "range needs two Ints".to_string())),
            };
            Ok(RtValue::List((lo..hi).map(RtValue::Int).collect()))
        }
        "sum" => {
            let xs = list_arg(&args[0], at)?;
            let mut total = 0.0;
            for x in xs {
                total += match x {
                    RtValue::Int(i) => i as f64,
                    RtValue::Float(f) => f,
                    other => return Err(LangError::eval(at, format!("sum of {other}"))),
                };
            }
            Ok(RtValue::Float(total))
        }
        "explain" => {
            let bound = tyargs
                .first()
                .cloned()
                .ok_or_else(|| LangError::eval(at, "explain needs a type argument".to_string()))?;
            match args.remove(0) {
                RtValue::DbToken => {
                    let strategy = s.db.get_strategy();
                    let before = dbpl_obs::global().snapshot();
                    let pkgs = s.db.get(&bound);
                    let delta = dbpl_obs::global().snapshot().delta_since(&before);
                    Ok(RtValue::Str(format!(
                        "get[{bound}]: strategy={} matches={} rows_scanned={} rows_sealed={} \
                         subtype_cache_hits={} subtype_cache_misses={}",
                        strategy_name(strategy),
                        pkgs.len(),
                        delta.counter("get.rows_scanned"),
                        delta.counter("get.rows_sealed"),
                        delta.counter("subtype.cache.hits"),
                        delta.counter("subtype.cache.misses"),
                    )))
                }
                other => Err(LangError::eval(
                    at,
                    format!("explain on non-database {other}"),
                )),
            }
        }
        "explainJoin" => {
            let rhs = list_arg(&args[1], at)?;
            let lhs = list_arg(&args[0], at)?;
            let mut lvals = Vec::with_capacity(lhs.len());
            for x in &lhs {
                lvals.push(x.to_value(at)?);
            }
            let mut rvals = Vec::with_capacity(rhs.len());
            for x in &rhs {
                rvals.push(x.to_value(at)?);
            }
            let a = dbpl_relation::GenRelation::from_values(lvals);
            let b = dbpl_relation::GenRelation::from_values(rvals);
            let before = dbpl_obs::global().snapshot();
            let joined = a.natural_join(&b);
            let delta = dbpl_obs::global().snapshot().delta_since(&before);
            Ok(RtValue::Str(format!(
                "join: strategy=partitioned left={} right={} out={} buckets={} fallback_rows={} \
                 products_serial={} products_parallel={}",
                a.len(),
                b.len(),
                joined.len(),
                delta.counter("join.partitioned.buckets"),
                delta.counter("join.partitioned.fallback_rows"),
                delta.counter("join.products.serial"),
                delta.counter("join.products.parallel"),
            )))
        }
        "explainAnalyze" => {
            let bound = tyargs.first().cloned().ok_or_else(|| {
                LangError::eval(at, "explainAnalyze needs a type argument".to_string())
            })?;
            match args.remove(0) {
                RtValue::DbToken => {
                    let strategy = s.db.get_strategy();
                    let before = dbpl_obs::global().snapshot();
                    let (pkgs, spans) =
                        dbpl_obs::trace::capture("explain_analyze", || s.db.get(&bound));
                    let delta = dbpl_obs::global().snapshot().delta_since(&before);
                    let hits = delta.counter("subtype.cache.hits");
                    let misses = delta.counter("subtype.cache.misses");
                    let header = format!(
                        "get[{bound}]: strategy={} matches={} rows_scanned={} rows_sealed={} \
                         cache_hit_ratio={}",
                        strategy_name(strategy),
                        pkgs.len(),
                        delta.counter("get.rows_scanned"),
                        delta.counter("get.rows_sealed"),
                        cache_hit_ratio(hits, misses),
                    );
                    Ok(RtValue::Str(format!(
                        "{header}\n{}",
                        dbpl_obs::trace::render_tree(&spans).trim_end()
                    )))
                }
                other => Err(LangError::eval(
                    at,
                    format!("explainAnalyze on non-database {other}"),
                )),
            }
        }
        "scrub" => match args.remove(0) {
            RtValue::DbToken => {
                let (report, spans) = dbpl_obs::trace::capture("scrub_cmd", || s.scrub());
                Ok(RtValue::Str(format!(
                    "{}\n{}",
                    report.summary(),
                    dbpl_obs::trace::render_tree(&spans).trim_end()
                )))
            }
            other => Err(LangError::eval(
                at,
                format!("scrub on non-database {other}"),
            )),
        },
        "timeline" => match args.remove(0) {
            RtValue::DbToken => Ok(RtValue::Str(
                dbpl_obs::timeline::render_active(10)
                    .unwrap_or_else(|| "timeline: no recorder active".to_string()),
            )),
            other => Err(LangError::eval(
                at,
                format!("timeline on non-database {other}"),
            )),
        },
        "analyze" => match args.remove(0) {
            RtValue::DbToken => {
                let catalog = s.db.analyze();
                Ok(RtValue::Str(format!(
                    "analyze: rebuilt statistics for {} carried type(s), {} row(s)",
                    catalog.type_count(),
                    catalog.total_rows()
                )))
            }
            other => Err(LangError::eval(
                at,
                format!("analyze on non-database {other}"),
            )),
        },
        "extentStats" => match args.remove(0) {
            RtValue::DbToken => Ok(RtValue::Str(s.db.stats_catalog().render())),
            other => Err(LangError::eval(
                at,
                format!("extentStats on non-database {other}"),
            )),
        },
        "workload" => match args.remove(0) {
            RtValue::DbToken => {
                let log = dbpl_stats::query_log();
                let records = log.snapshot();
                let mut out = format!(
                    "workload: {} recorded query(ies), {} dropped (capacity {})\n",
                    records.len(),
                    log.dropped(),
                    log.capacity()
                );
                for (i, agg) in log.top_k(5).iter().enumerate() {
                    out.push_str(&format!(
                        "  #{} {} count={} rows_in={} rows_out={} total_dur_us={} max_dur_us={}\n",
                        i + 1,
                        agg.fingerprint,
                        agg.count,
                        agg.rows_in,
                        agg.rows_out,
                        agg.total_dur_us,
                        agg.max_dur_us
                    ));
                }
                Ok(RtValue::Str(out))
            }
            other => Err(LangError::eval(
                at,
                format!("workload on non-database {other}"),
            )),
        },
        "explainAnalyzeJoin" => {
            let rhs = list_arg(&args[1], at)?;
            let lhs = list_arg(&args[0], at)?;
            let mut lvals = Vec::with_capacity(lhs.len());
            for x in &lhs {
                lvals.push(x.to_value(at)?);
            }
            let mut rvals = Vec::with_capacity(rhs.len());
            for x in &rhs {
                rvals.push(x.to_value(at)?);
            }
            let a = dbpl_relation::GenRelation::from_values(lvals);
            let b = dbpl_relation::GenRelation::from_values(rvals);
            let before = dbpl_obs::global().snapshot();
            let (joined, spans) =
                dbpl_obs::trace::capture("explain_analyze_join", || a.natural_join(&b));
            let delta = dbpl_obs::global().snapshot().delta_since(&before);
            let header = format!(
                "join: strategy=partitioned left={} right={} out={} buckets={} fallback_rows={}",
                a.len(),
                b.len(),
                joined.len(),
                delta.counter("join.partitioned.buckets"),
                delta.counter("join.partitioned.fallback_rows"),
            );
            Ok(RtValue::Str(format!(
                "{header}\n{}",
                dbpl_obs::trace::render_tree(&spans).trim_end()
            )))
        }
        other => Err(LangError::eval(at, format!("unknown builtin `{other}`"))),
    }
}

/// The surface name of a Get strategy, as reported by `explain`.
fn strategy_name(s: dbpl_core::GetStrategy) -> &'static str {
    s.name()
}

/// Hits over (hits + misses), rendered with two decimals; `1.00` when the
/// operation never consulted the cache.
fn cache_hit_ratio(hits: u64, misses: u64) -> String {
    if hits + misses == 0 {
        "1.00".to_string()
    } else {
        format!("{:.2}", hits as f64 / (hits + misses) as f64)
    }
}

/// Check that a coerced or interned value is usable at a named type — the
/// subtype relation over the session's environment. Re-exported for tests.
pub fn carried_subtype(carried: &Type, want: &Type, s: &Session) -> bool {
    is_subtype(carried, want, s.db.env())
}
