//! The concurrent multi-session engine: MVCC snapshot reads and a
//! group-commit writer.
//!
//! A [`Server`] multiplexes many MiniDBPL sessions over one shared
//! database. The design (documented in depth in `docs/CONCURRENCY.md`):
//!
//! * **Snapshots.** The engine's state is an epoch-stamped, immutable
//!   [`EngineState`] behind an Arc-swap-style [`SnapshotCell`]. A reader
//!   clones the `Arc` (two atomic ops under a momentary read lock) and
//!   then runs entirely against its private snapshot: it never blocks a
//!   writer and is never blocked by one. [`Database::clone`] is O(1)
//!   copy-on-write, so the snapshot carries the whole database for free.
//!   Reclamation is the `Arc` itself: an old epoch's memory is freed when
//!   the last reader holding it drops it — no epoch lists, no grace
//!   periods.
//! * **Frames.** A program that wrote anything is diffed against its base
//!   snapshot into a [`Frame`]: the dynamics it appended, the types and
//!   `include` edges it declared, the heap objects it allocated, and the
//!   extern writes it staged. Programs can only *append* (put, declare,
//!   extern, intern-allocate), so the diff is exact.
//! * **Group commit.** Frames from all sessions funnel through one
//!   applier thread. The applier drains whatever is queued (up to
//!   [`MAX_BATCH`]), applies the frames in arrival order to a private
//!   successor of the current snapshot, makes the batch's merged extern
//!   writes durable with **one** intent record and one fsync pass
//!   ([`commit_multi`]), publishes **one** new epoch, and wakes every
//!   committer. The fsync that dominated per-transaction commit cost is
//!   paid once per batch.
//! * **Failure semantics** match [`Session`]: a pre-durability failure
//!   aborts the whole batch (nothing published, disk-full flips the
//!   engine degraded); a post-durability failure is **in doubt** and is
//!   attributed to *every* member of the batch, whose effects roll
//!   forward on recovery.
//! * **Overload resilience.** The commit queue is **bounded**
//!   ([`ServerConfig`]): admission past capacity waits within the
//!   caller's transaction deadline and otherwise fails fast with an
//!   [`ErrorKind::Overloaded`](crate::ErrorKind::Overloaded) error —
//!   probe-first, nothing staged. Deadlines are **queue-aware**: time
//!   spent waiting behind a batch counts, and the applier drops
//!   already-expired frames before the intent is written. The applier is
//!   **supervised**: a panicking frame aborts only itself, an
//!   applier-level panic flips the engine [`Health::Degraded`] instead
//!   of killing the thread silently, and every enqueued commit is
//!   guaranteed a definitive reply — committed, conflicted, overloaded,
//!   expired, aborted, or engine-down — never a hang, including across
//!   [`Server::shutdown`]'s bounded drain.

use crate::error::LangError;
use crate::session::{Health, Session};
use dbpl_core::Database;
use dbpl_obs::timeline::{Recorder, RecorderConfig, Timeline};
use dbpl_persist::{
    commit_multi, recover_pending, PersistError, QuarantineEntry, ReplicatingStore, RetryPolicy,
    Vfs,
};
use dbpl_types::Type;
use dbpl_values::{DynValue, Oid, Value};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Most frames coalesced into one group commit. Bounds both the latency
/// a queued commit can accumulate behind its batch and the size of the
/// coalesced intent record. Batch formation adds **no artificial delay**:
/// the applier takes whatever is queued the moment it goes idle, so under
/// light load every batch has size 1 (pure serial latency) and under
/// heavy load batches grow naturally toward this cap — the fairness
/// bound is "at most one in-flight batch ahead of you".
pub const MAX_BATCH: usize = 128;

static SERVER_COUNTER: AtomicU64 = AtomicU64::new(0);

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

/// Capacity knobs for a [`Server`]'s write path. All limits are
/// *admission* limits: a request past a limit is refused (or waits, if
/// its transaction deadline allows) **before anything is staged**, so a
/// saturated engine degrades into fast, clean `Overloaded` errors
/// instead of unbounded queue growth and memory exhaustion.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Most frames that may sit in the commit queue waiting for the
    /// applier. Enqueue past this either waits (within the session's
    /// `txn_deadline`) or fails fast with `Overloaded`.
    pub queue_depth: usize,
    /// Most frames in flight overall: queued plus taken by the applier
    /// but not yet replied to. Bounds the memory pinned by staged
    /// frames even while a slow batch is being made durable.
    pub max_inflight_frames: usize,
    /// Most concurrently live [`ServerSession`]s. [`Server::try_session`]
    /// past this fails with `Overloaded`; a dropped session frees its
    /// slot.
    pub max_sessions: usize,
    /// How long [`Server::shutdown`] waits for the applier to drain
    /// queued commits before abandoning it: past this, still-queued
    /// commits are answered `EngineDown` (definitively un-applied) and
    /// the applier thread is left to die detached.
    pub drain_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            queue_depth: 256,
            max_inflight_frames: 256 + MAX_BATCH,
            max_sessions: 4096,
            drain_deadline: Duration::from_secs(5),
        }
    }
}

/// Why the admission gate turned a commit away.
#[derive(Debug)]
enum AdmissionError {
    /// At capacity and the caller's deadline did not allow waiting (or
    /// expired while waiting). Nothing was staged.
    Overloaded { gate: &'static str, depth: usize },
    /// The engine is shut down or its applier died.
    EngineDown,
}

/// The bounded commit queue between sessions and the applier: a
/// `VecDeque` under one mutex with three condvars (admission waiters,
/// the applier, and shutdown). Every request that enters the queue is
/// guaranteed a terminal outcome: taken by the applier (which replies or
/// drops the reply sender), or drained with `EngineDown` by shutdown /
/// the applier's exit guard.
struct CommitQueue {
    state: Mutex<QueueState>,
    /// Signals admission waiters that depth may have dropped.
    space: Condvar,
    /// Signals the applier that work arrived (or shutdown began).
    work: Condvar,
    /// Signals [`Engine::shutdown`] that the applier exited.
    exit: Condvar,
}

struct QueueState {
    items: VecDeque<CommitRequest>,
    /// Frames taken by the applier and not yet replied to.
    inflight: usize,
    /// Set once by shutdown: no further admissions; the applier drains
    /// what is queued, then exits.
    shutdown: bool,
    /// Set when the queue can no longer promise the applier will ever
    /// drain it (drain deadline expired, or the applier thread died):
    /// the applier must take nothing more, and whoever sets it drains
    /// the remaining items with `EngineDown`.
    abandoned: bool,
    /// The applier's exit guard ran (normal return or unwind).
    applier_exited: bool,
}

/// What [`CommitQueue::next_batch`] hands the applier.
enum Take {
    Batch(Vec<CommitRequest>),
    Exit,
}

impl CommitQueue {
    fn new() -> CommitQueue {
        CommitQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                inflight: 0,
                shutdown: false,
                abandoned: false,
                applier_exited: false,
            }),
            space: Condvar::new(),
            work: Condvar::new(),
            exit: Condvar::new(),
        }
    }

    fn depth_gauge() -> Arc<dbpl_obs::Gauge> {
        dbpl_obs::global().gauge("server.queue_depth")
    }

    /// Admit one commit request, or refuse it with nothing staged. At
    /// capacity the call waits for space until `admission_deadline` (the
    /// session's transaction deadline) and gives up `Overloaded` when it
    /// passes — or immediately, if the caller set no deadline.
    fn enqueue(
        &self,
        req: CommitRequest,
        admission_deadline: Option<Instant>,
        cfg: &ServerConfig,
    ) -> Result<(), AdmissionError> {
        let mut st = self.state.lock();
        loop {
            if st.shutdown || st.abandoned {
                return Err(AdmissionError::EngineDown);
            }
            let gate = if st.items.len() >= cfg.queue_depth {
                Some("queue_full")
            } else if st.items.len() + st.inflight >= cfg.max_inflight_frames {
                Some("inflight_full")
            } else {
                None
            };
            let Some(gate) = gate else {
                st.items.push_back(req);
                Self::depth_gauge().set(st.items.len() as i64);
                self.work.notify_one();
                return Ok(());
            };
            let depth = st.items.len();
            let Some(deadline) = admission_deadline else {
                return Err(Self::rejected(gate, depth));
            };
            if Instant::now() >= deadline || self.space.wait_until(&mut st, deadline).timed_out() {
                return Err(Self::rejected("admission_timeout", st.items.len()));
            }
        }
    }

    fn rejected(gate: &'static str, depth: usize) -> AdmissionError {
        dbpl_obs::global().counter("server.overload_rejected").inc();
        dbpl_obs::emit(dbpl_obs::Event::Overload {
            depth: depth as u64,
            gate: gate.to_string(),
        });
        AdmissionError::Overloaded { gate, depth }
    }

    /// Block until work or shutdown; take up to `max` queued requests.
    fn next_batch(&self, max: usize) -> Take {
        let mut st = self.state.lock();
        loop {
            if st.abandoned {
                return Take::Exit;
            }
            if !st.items.is_empty() {
                let n = st.items.len().min(max);
                let batch: Vec<CommitRequest> = st.items.drain(..n).collect();
                st.inflight += n;
                Self::depth_gauge().set(st.items.len() as i64);
                // Conservation pair with `server.queue_wait_us`: every
                // admitted (taken) frame records exactly one queue-wait
                // observation, so the counter and the histogram count
                // move in lockstep — the invariant the chaos harness
                // and `timeline_check` verify.
                dbpl_obs::global()
                    .counter("server.frames_admitted")
                    .add(n as u64);
                let wait = dbpl_obs::global().histogram("server.queue_wait_us");
                let now = Instant::now();
                for req in &batch {
                    wait.record_us(now.duration_since(req.enqueued_at).as_micros() as u64);
                }
                self.space.notify_all();
                return Take::Batch(batch);
            }
            if st.shutdown {
                return Take::Exit;
            }
            self.work.wait(&mut st);
        }
    }

    /// The applier replied to (or dropped) `n` in-flight requests.
    fn finish_batch(&self, n: usize) {
        let mut st = self.state.lock();
        st.inflight -= n.min(st.inflight);
        self.space.notify_all();
    }

    /// Begin shutdown: no further admissions; wake everyone.
    fn begin_shutdown(&self) {
        self.state.lock().shutdown = true;
        self.work.notify_all();
        self.space.notify_all();
    }

    /// Wait up to `deadline` for the applier's exit guard to run.
    fn wait_applier_exit(&self, deadline: Instant) -> bool {
        let mut st = self.state.lock();
        while !st.applier_exited {
            if self.exit.wait_until(&mut st, deadline).timed_out() {
                return st.applier_exited;
            }
        }
        true
    }

    /// Mark the queue dead and hand back everything still queued so the
    /// caller can answer each request `EngineDown`. Idempotent.
    fn abandon(&self) -> Vec<CommitRequest> {
        let mut st = self.state.lock();
        st.abandoned = true;
        st.shutdown = true;
        let leftovers: Vec<CommitRequest> = st.items.drain(..).collect();
        Self::depth_gauge().set(0);
        self.work.notify_all();
        self.space.notify_all();
        leftovers
    }

    /// The applier's exit guard: runs on normal return *and* on unwind,
    /// so no queued request can outlive the applier un-answered.
    fn applier_exited(&self, dying: bool) -> Vec<CommitRequest> {
        let leftovers = if dying { self.abandon() } else { Vec::new() };
        let mut st = self.state.lock();
        st.applier_exited = true;
        drop(st);
        self.exit.notify_all();
        leftovers
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// One immutable, epoch-stamped published state of the engine.
#[derive(Debug)]
pub struct EngineState {
    /// Monotone publication counter: epoch `n+1` is the state after the
    /// `n+1`th group commit. Epoch 0 is the state at open.
    pub epoch: u64,
    /// The database as of this epoch. Cloning it is O(1) (copy-on-write
    /// components), which is what makes per-program snapshots free.
    pub db: Database,
    /// Retention accounting: decrements the engine's live-snapshot count
    /// (and the `snapshot.live` gauge) when the last `Arc` clone of this
    /// state drops. `None` for states not owned by an engine.
    live: Option<LiveTag>,
}

/// The accounting handle an [`EngineState`] carries so snapshot
/// retention is observable: one global gauge for dashboards, one
/// per-engine count for tests (the global gauge is shared by every
/// engine in the process).
#[derive(Debug)]
struct LiveTag {
    gauge: Arc<dbpl_obs::Gauge>,
    engine_live: Arc<AtomicI64>,
}

impl EngineState {
    fn tracked(epoch: u64, db: Database, engine_live: &Arc<AtomicI64>) -> EngineState {
        let gauge = dbpl_obs::global().gauge("snapshot.live");
        gauge.inc();
        engine_live.fetch_add(1, Ordering::Relaxed);
        EngineState {
            epoch,
            db,
            live: Some(LiveTag {
                gauge,
                engine_live: Arc::clone(engine_live),
            }),
        }
    }
}

impl Drop for EngineState {
    fn drop(&mut self) {
        if let Some(tag) = &self.live {
            tag.gauge.dec();
            tag.engine_live.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// An Arc-swap-style cell holding the current [`EngineState`].
///
/// Readers take the read lock only long enough to clone the `Arc`;
/// the applier takes the write lock only long enough to store a new one.
/// Neither ever holds the lock across I/O or evaluation, so readers
/// never wait on a writer's *work* — only on a pointer swap. (A true
/// lock-free arc-swap needs deferred reclamation machinery; the
/// two-atomic-ops critical section here is the standard-library
/// equivalent, and is invisible next to program execution costs.)
struct SnapshotCell {
    inner: RwLock<Arc<EngineState>>,
}

impl SnapshotCell {
    fn new(state: EngineState) -> SnapshotCell {
        SnapshotCell {
            inner: RwLock::new(Arc::new(state)),
        }
    }

    /// The current snapshot — O(1), never blocks on in-flight commits.
    fn load(&self) -> Arc<EngineState> {
        Arc::clone(&self.inner.read())
    }

    /// Publish a new snapshot — O(1) pointer swap.
    fn store(&self, state: EngineState) {
        *self.inner.write() = Arc::new(state);
    }
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// The effects of one program, as a diff against its base snapshot.
/// MiniDBPL programs can only *extend* the database — append dynamics,
/// declare new types/edges, allocate heap objects, stage extern writes —
/// so a frame is a complete record of a program's database effects.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Epoch of the snapshot the program ran against (observability and
    /// test assertions; frames validate against the *current* state at
    /// apply time).
    pub base_epoch: u64,
    /// Type definitions the program added: `(name, definition)`.
    pub decls: Vec<(String, Type)>,
    /// `include sub in sup` edges the program added.
    pub includes: Vec<(String, String)>,
    /// Heap objects the program allocated (ascending by oid). Values may
    /// reference earlier objects in this same list; at apply time they
    /// are re-allocated in the master heap and references are remapped.
    pub heap_news: Vec<(Oid, Type, Value)>,
    /// Dynamics the program appended, in order.
    pub puts: Vec<DynValue>,
    /// Staged extern mutations: `Some(bytes)` installs, `None` removes.
    pub externs: BTreeMap<String, Option<Vec<u8>>>,
}

impl Frame {
    /// A frame with no effects — a pure read.
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
            && self.includes.is_empty()
            && self.heap_news.is_empty()
            && self.puts.is_empty()
            && self.externs.is_empty()
    }
}

/// Diff the database a program produced against the snapshot it started
/// from. Exact because programs only append (see [`Frame`]).
fn diff_frame(
    base: &Database,
    worked: &Database,
    externs: BTreeMap<String, Option<Vec<u8>>>,
    base_epoch: u64,
) -> Result<Frame, LangError> {
    let mut decls = Vec::new();
    for (name, ty) in worked.env().definitions() {
        match base.env().lookup(name) {
            None => decls.push((name.clone(), ty.clone())),
            Some(t) if t == ty => {}
            Some(_) => {
                return Err(LangError::eval(
                    0,
                    format!("type '{name}' was redefined mid-program; server sessions do not support schema evolution"),
                ))
            }
        }
    }
    let mut includes = Vec::new();
    for name in worked.env().names() {
        let base_sups: std::collections::BTreeSet<&String> =
            base.env().declared_supertypes(name).collect();
        for sup in worked.env().declared_supertypes(name) {
            if !base_sups.contains(sup) {
                includes.push((name.clone(), sup.clone()));
            }
        }
    }
    let watermark = base.heap().next_oid();
    let heap_news: Vec<(Oid, Type, Value)> = worked
        .heap()
        .iter()
        .filter(|(oid, _)| *oid >= watermark)
        .map(|(oid, obj)| (oid, obj.ty.clone(), obj.value.clone()))
        .collect();
    let puts = worked.dynamics()[base.len()..].to_vec();
    Ok(Frame {
        base_epoch,
        decls,
        includes,
        heap_news,
        puts,
        externs,
    })
}

/// Rewrite every `Ref` in `value` through `remap`, leaving unmapped
/// references (objects that predate the frame) untouched.
fn remap_refs(value: &Value, remap: &BTreeMap<Oid, Oid>) -> Value {
    match value {
        Value::Ref(o) => Value::Ref(remap.get(o).copied().unwrap_or(*o)),
        Value::List(xs) => Value::List(xs.iter().map(|v| remap_refs(v, remap)).collect()),
        Value::Set(xs) => Value::Set(xs.iter().map(|v| remap_refs(v, remap)).collect()),
        Value::Record(fs) => Value::Record(
            fs.iter()
                .map(|(l, v)| (l.clone(), remap_refs(v, remap)))
                .collect(),
        ),
        Value::Tagged(l, v) => Value::Tagged(l.clone(), Box::new(remap_refs(v, remap))),
        Value::Dyn(d) => Value::dynamic(d.ty.clone(), remap_refs(&d.value, remap)),
        other => other.clone(),
    }
}

/// Apply one frame to `working` in place. On `Err` the caller restores
/// its pre-frame backup — `working` must be treated as poisoned.
fn apply_frame(working: &mut Database, frame: &Frame) -> Result<(), String> {
    // Schema first, validated against the *current* master env: another
    // frame may have declared the same name since this program's base
    // snapshot. An identical definition is idempotent; a different one
    // is a genuine write-write conflict.
    let mut env = working.env().clone(); // O(1) copy-on-write
    for (name, ty) in &frame.decls {
        match env.lookup(name) {
            None => env
                .declare(name.clone(), ty.clone())
                .map_err(|e| format!("declaring type '{name}': {e}"))?,
            Some(t) if t == ty => {}
            Some(_) => {
                return Err(format!(
                    "type '{name}' was concurrently declared with a different definition"
                ))
            }
        }
    }
    for (sub, sup) in &frame.includes {
        let already = env.declared_supertypes(sub).any(|s| s == sup);
        if !already {
            env.declare_subtype(sub.clone(), sup.clone())
                .map_err(|e| format!("include {sub} in {sup}: {e}"))?;
        }
    }
    *working.env_mut() = env;
    // Heap objects re-allocate at master identities; references between
    // this frame's own objects are remapped (ascending-oid order makes
    // one forward pass sufficient; cycles cannot form because programs
    // cannot update an object after allocating it).
    let mut remap: BTreeMap<Oid, Oid> = BTreeMap::new();
    for (oid, ty, value) in &frame.heap_news {
        let v = remap_refs(value, &remap);
        let new = working.heap_mut().alloc(ty.clone(), v);
        if new != *oid {
            remap.insert(*oid, new);
        }
    }
    for d in &frame.puts {
        let v = remap_refs(&d.value, &remap);
        working
            .put_dyn(DynValue::new(d.ty.clone(), v))
            .map_err(|e| format!("applying put: {e}"))?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The applier
// ---------------------------------------------------------------------------

/// The applier's verdict on one queued frame.
#[derive(Debug, Clone)]
enum CommitOutcome {
    /// Applied and published as part of the given epoch.
    Applied { epoch: u64 },
    /// The frame conflicts with a commit serialized ahead of it (e.g. a
    /// concurrent incompatible type declaration). The frame was not
    /// applied; the rest of its batch is unaffected.
    Conflict(String),
    /// The engine refused to attempt the commit (degraded store,
    /// unfinished pending recovery). Nothing was staged or written.
    Refused(String),
    /// The frame's transaction deadline expired while it waited behind
    /// its batch: dropped **before the intent was written** — nothing
    /// durable happened. Queue-aware: wait time counts against the
    /// deadline.
    DeadlineExceeded { waited_ms: u64 },
    /// The batch's durable commit failed before the durability point
    /// (or this frame's application panicked): aborted, nothing of this
    /// frame published.
    Aborted(String),
    /// The engine shut down (or its applier died) before this frame was
    /// applied. Definitively not committed.
    EngineDown(String),
    /// The batch's durable commit failed *after* the durability point:
    /// the coalesced intent is durable and will roll forward on
    /// recovery. Attributed to every member of the batch.
    InDoubt { txn_id: u64, detail: String },
}

struct CommitRequest {
    frame: Frame,
    reply: mpsc::Sender<CommitOutcome>,
    /// The session's transaction deadline: admission waits until it,
    /// and the applier drops the frame (pre-durability) if it has
    /// passed by the time its batch starts.
    deadline: Option<Instant>,
    /// When the request entered the queue (`server.queue_wait_us`).
    enqueued_at: Instant,
}

impl CommitRequest {
    /// Answer with a definitive outcome; a dropped receiver is fine.
    fn answer(self, outcome: CommitOutcome) {
        let _ = self.reply.send(outcome);
    }
}

/// Deterministic panic-injection knobs for the chaos harness: arm a
/// 1-based frame / batch ordinal (0 = off) and the applier panics when
/// its running count reaches it — inside the per-frame supervision
/// boundary (frame) or just before the durable commit (batch, so the
/// injected failure is always pre-durability).
struct Chaos {
    frames_seen: AtomicU64,
    panic_frame_at: AtomicU64,
    batches_seen: AtomicU64,
    panic_batch_at: AtomicU64,
}

impl Chaos {
    fn new() -> Chaos {
        Chaos {
            frames_seen: AtomicU64::new(0),
            panic_frame_at: AtomicU64::new(0),
            batches_seen: AtomicU64::new(0),
            panic_batch_at: AtomicU64::new(0),
        }
    }
}

/// State shared between the engine facade and the applier thread.
struct Shared {
    snap: SnapshotCell,
    store: Arc<ReplicatingStore>,
    /// The bounded commit queue (admission control lives here).
    queue: CommitQueue,
    /// Capacity knobs fixed at open.
    cfg: ServerConfig,
    /// Why the engine refuses durable commits, or `None` when healthy.
    degraded: Mutex<Option<String>>,
    /// A durably pending (in-doubt) transaction blocking further durable
    /// batches until recovery completes.
    pending_recovery: Mutex<Option<u64>>,
    /// When enabled, every applied frame in serialization order plus the
    /// database it started from — the applier's log, replayable
    /// single-threaded for differential testing.
    frame_log: Mutex<Option<FrameLog>>,
    /// Live [`ServerSession`] count, gated by `cfg.max_sessions`.
    sessions: AtomicU64,
    /// Live snapshot count for *this* engine (the `snapshot.live` gauge
    /// aggregates every engine in the process; tests need isolation).
    engine_live: Arc<AtomicI64>,
    /// Panic-injection knobs (chaos harness only; all zero in service).
    chaos: Chaos,
}

struct FrameLog {
    base: Database,
    frames: Vec<Frame>,
}

fn is_storage_full(e: &PersistError) -> bool {
    match e {
        PersistError::Io(io) => io.kind() == std::io::ErrorKind::StorageFull,
        _ => false,
    }
}

impl Shared {
    fn enter_degraded(&self, reason: String) {
        let mut d = self.degraded.lock();
        if d.is_none() {
            dbpl_obs::emit(dbpl_obs::Event::HealthChanged {
                degraded: true,
                reason: reason.clone(),
            });
            *d = Some(reason);
        }
    }

    fn exit_degraded(&self) {
        let mut d = self.degraded.lock();
        if d.take().is_some() {
            dbpl_obs::emit(dbpl_obs::Event::HealthChanged {
                degraded: false,
                reason: "store is writable again".to_string(),
            });
        }
    }

    /// Probe-first health gate shared by session enqueue and the applier:
    /// a degraded engine re-probes the store and either heals or reports
    /// the (still-standing) reason.
    fn check_writable(&self) -> Result<(), String> {
        let reason = self.degraded.lock().clone();
        if let Some(reason) = reason {
            match self.store.probe_writable() {
                Ok(()) => self.exit_degraded(),
                Err(e) => return Err(format!("engine degraded ({reason}): {e}")),
            }
        }
        Ok(())
    }
}

/// Answers every still-queued request `EngineDown` when the applier
/// leaves its loop for *any* reason — normal shutdown return or an
/// unwind that escaped supervision — so no enqueued commit can ever
/// block forever on a reply that will not come.
struct ApplierExitGuard {
    shared: Arc<Shared>,
}

impl Drop for ApplierExitGuard {
    fn drop(&mut self) {
        let dying = std::thread::panicking();
        for req in self.shared.queue.applier_exited(dying) {
            req.answer(CommitOutcome::EngineDown(
                "applier exited with commits still queued; nothing was staged".to_string(),
            ));
        }
    }
}

fn applier_loop(shared: Arc<Shared>) {
    let _guard = ApplierExitGuard {
        shared: Arc::clone(&shared),
    };
    loop {
        // Natural batching: take whatever queued while the previous batch
        // was being made durable, without waiting for more.
        let batch = match shared.queue.next_batch(MAX_BATCH) {
            Take::Batch(batch) => batch,
            Take::Exit => return,
        };
        let n = batch.len();
        // Supervision: a panic that escapes a batch (applier-level bug or
        // injected chaos) must not silently kill the writer thread. The
        // unwind drops the batch's reply senders, so every member's
        // session sees a definitive engine-down error; the engine flips
        // degraded (probe-first self-heal decides when commits resume)
        // and the applier keeps serving.
        let res = catch_unwind(AssertUnwindSafe(|| apply_batch(&shared, batch)));
        shared.queue.finish_batch(n);
        if let Err(payload) = res {
            dbpl_obs::global().counter("applier.panic").inc();
            shared.enter_degraded(format!(
                "applier panicked mid-batch: {}",
                crate::session::panic_message(&payload)
            ));
        }
    }
}

fn apply_batch(shared: &Shared, batch: Vec<CommitRequest>) {
    // Queue-aware deadlines: a frame whose transaction deadline expired
    // while it waited is dropped HERE, before anything is applied or any
    // intent is written — strictly pre-durability, so `DeadlineExceeded`
    // always means "nothing durable happened".
    let now = Instant::now();
    let batch: Vec<CommitRequest> = batch
        .into_iter()
        .filter_map(|req| match req.deadline {
            Some(d) if now >= d => {
                dbpl_obs::global().counter("server.deadline_dropped").inc();
                let waited_ms = now.duration_since(req.enqueued_at).as_millis() as u64;
                req.answer(CommitOutcome::DeadlineExceeded { waited_ms });
                None
            }
            _ => Some(req),
        })
        .collect();
    if batch.is_empty() {
        return;
    }

    let mut span = dbpl_obs::span!("txn.group_commit");
    span.set_attr("batch_size", batch.len());
    dbpl_obs::global()
        .histogram("group_commit.batch_size")
        .record_us(batch.len() as u64);
    dbpl_obs::global().counter("group_commit.batches").inc();

    // Refusals: probe-first, nothing staged. (Sessions also gate on
    // health before enqueueing; this closes the race where the engine
    // degrades while frames are in flight.)
    if let Err(msg) = shared.check_writable() {
        span.set_attr("outcome", "refused");
        for req in batch {
            let _ = req.reply.send(CommitOutcome::Refused(msg.clone()));
        }
        return;
    }
    let pending = *shared.pending_recovery.lock();
    if let Some(txn_id) = pending {
        match recover_pending(None, &shared.store) {
            Ok(_) => *shared.pending_recovery.lock() = None,
            Err(e) => {
                span.set_attr("outcome", "refused");
                let msg =
                    format!("commit blocked by pending transaction {txn_id} ({e}); nothing staged");
                for req in batch {
                    let _ = req.reply.send(CommitOutcome::Refused(msg.clone()));
                }
                return;
            }
        }
    }

    let current = shared.snap.load();
    let mut working = current.db.clone(); // O(1) copy-on-write
    let mut outcomes: Vec<Option<CommitOutcome>> = vec![None; batch.len()];
    let mut applied: Vec<usize> = Vec::new();
    let mut externs: BTreeMap<String, Option<Vec<u8>>> = BTreeMap::new();
    let panic_frame_at = shared.chaos.panic_frame_at.load(Ordering::Relaxed);
    for (i, req) in batch.iter().enumerate() {
        let backup = working.clone(); // O(1); pays CoW only if the frame applies partially
                                      // Per-frame supervision: a panic while applying one frame (bad
                                      // data, applier bug, injected chaos) aborts ONLY that frame —
                                      // the working database is restored from the backup and the rest
                                      // of the batch proceeds.
        let frame_no = shared.chaos.frames_seen.fetch_add(1, Ordering::Relaxed) + 1;
        let res = catch_unwind(AssertUnwindSafe(|| {
            if panic_frame_at != 0 && frame_no == panic_frame_at {
                panic!("chaos: injected panic applying frame {frame_no}");
            }
            apply_frame(&mut working, &req.frame)
        }));
        match res {
            Ok(Ok(())) => {
                applied.push(i);
                // Later frames override earlier ones per handle — the
                // same last-writer-wins the serial schedule would give.
                for (h, w) in &req.frame.externs {
                    externs.insert(h.clone(), w.clone());
                }
            }
            Ok(Err(msg)) => {
                working = backup;
                outcomes[i] = Some(CommitOutcome::Conflict(msg));
            }
            Err(payload) => {
                dbpl_obs::global().counter("applier.frame_panic").inc();
                working = backup;
                outcomes[i] = Some(CommitOutcome::Aborted(format!(
                    "frame application panicked (frame aborted, batch unaffected): {}",
                    crate::session::panic_message(&payload)
                )));
            }
        }
    }
    span.set_attr("applied", applied.len());
    span.set_attr("externs", externs.len());

    // Batch-level chaos: fires BEFORE the durable commit, so an injected
    // applier-level panic is always pre-durability — the whole batch
    // aborts via the unwind (dropped reply senders → engine-down at the
    // callers) and nothing is published.
    let batch_no = shared.chaos.batches_seen.fetch_add(1, Ordering::Relaxed) + 1;
    let panic_batch_at = shared.chaos.panic_batch_at.load(Ordering::Relaxed);
    if panic_batch_at != 0 && batch_no == panic_batch_at {
        panic!("chaos: injected applier panic before batch {batch_no} commit");
    }

    if !applied.is_empty() && !externs.is_empty() {
        // One intent record + one fsync pass for the whole batch.
        match commit_multi(None, &shared.store, &externs, &RetryPolicy::default()) {
            Ok(_) => {}
            Err(PersistError::InDoubt { txn_id, cause }) => {
                // Past the durability point: the coalesced intent is
                // durable; the batch is committed-in-doubt as a unit.
                match recover_pending(None, &shared.store) {
                    Ok(_) => {}
                    Err(e) => {
                        *shared.pending_recovery.lock() = Some(txn_id);
                        span.set_attr("outcome", "in_doubt");
                        let epoch = current.epoch + 1;
                        // In-doubt batches publish, so they are part of
                        // the serialization the frame log witnesses.
                        if let Some(log) = shared.frame_log.lock().as_mut() {
                            for &i in &applied {
                                log.frames.push(batch[i].frame.clone());
                            }
                        }
                        publish(shared, epoch, working);
                        // Every member of the batch is in doubt — not
                        // just the frame that happened to queue first.
                        for &i in &applied {
                            outcomes[i] = Some(CommitOutcome::InDoubt {
                                txn_id,
                                detail: format!("{cause}; recovery retry: {e}"),
                            });
                        }
                        finish(batch, outcomes);
                        return;
                    }
                }
            }
            Err(e) => {
                // Pre-durability: nothing durable happened; the whole
                // batch aborts and no new epoch is published.
                span.set_attr("outcome", "aborted");
                dbpl_obs::emit(dbpl_obs::Event::TxnAbort {
                    reason: format!("group commit failed: {e}"),
                });
                if is_storage_full(&e) {
                    shared.enter_degraded(format!("storage full during group commit: {e}"));
                }
                let msg = format!("group commit failed: {e}");
                for &i in &applied {
                    outcomes[i] = Some(CommitOutcome::Aborted(msg.clone()));
                }
                finish(batch, outcomes);
                return;
            }
        }
    }

    let epoch = current.epoch + 1;
    span.set_attr("epoch", epoch);
    if let Some(log) = shared.frame_log.lock().as_mut() {
        for &i in &applied {
            log.frames.push(batch[i].frame.clone());
        }
    }
    publish(shared, epoch, working);
    for &i in &applied {
        outcomes[i] = Some(CommitOutcome::Applied { epoch });
    }
    finish(batch, outcomes);
}

fn publish(shared: &Shared, epoch: u64, db: Database) {
    shared
        .snap
        .store(EngineState::tracked(epoch, db, &shared.engine_live));
    dbpl_obs::global().counter("snapshot.publish").inc();
}

fn finish(batch: Vec<CommitRequest>, outcomes: Vec<Option<CommitOutcome>>) {
    for (req, outcome) in batch.into_iter().zip(outcomes) {
        let outcome =
            outcome.unwrap_or_else(|| CommitOutcome::Aborted("applier invariant broken".into()));
        req.answer(outcome);
    }
}

// ---------------------------------------------------------------------------
// Engine and Server
// ---------------------------------------------------------------------------

/// The shared engine: published snapshots + the group-commit applier.
struct Engine {
    shared: Arc<Shared>,
    applier: Mutex<Option<JoinHandle<()>>>,
    /// The flight recorder, when one is running
    /// ([`Server::start_recorder`]). Shutdown drains it before the
    /// applier exits so the timeline's last sample still sees the
    /// final batch's metrics.
    recorder: Mutex<Option<Recorder>>,
}

impl Engine {
    fn open_with(
        vfs: Arc<dyn Vfs>,
        dir: impl AsRef<Path>,
        cfg: ServerConfig,
    ) -> Result<Engine, LangError> {
        let store = Arc::new(
            ReplicatingStore::open_with(vfs, dir)
                .map_err(|e| LangError::eval(0, format!("cannot open store: {e}")))?,
        );
        // Same open-time recovery as a standalone session: an extern-only
        // intent rolls forward now; an intrinsic-bearing one blocks
        // durable commits until it can be recovered whole.
        let mut pending = None;
        match recover_pending(None, &store) {
            Ok(_) => {}
            Err(PersistError::RecoveryPending { txn_id }) => pending = Some(txn_id),
            Err(e) => {
                return Err(LangError::eval(
                    0,
                    format!("cannot recover pending transaction: {e}"),
                ))
            }
        }
        let engine_live = Arc::new(AtomicI64::new(0));
        let shared = Arc::new(Shared {
            snap: SnapshotCell::new(EngineState::tracked(0, Database::new(), &engine_live)),
            store,
            queue: CommitQueue::new(),
            cfg,
            degraded: Mutex::new(None),
            pending_recovery: Mutex::new(pending),
            frame_log: Mutex::new(None),
            sessions: AtomicU64::new(0),
            engine_live,
            chaos: Chaos::new(),
        });
        let applier = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("dbpl-applier".to_string())
                .spawn(move || applier_loop(shared))
                .map_err(|e| LangError::eval(0, format!("cannot start applier: {e}")))?
        };
        Ok(Engine {
            shared,
            applier: Mutex::new(Some(applier)),
            recorder: Mutex::new(None),
        })
    }

    /// Stop the flight recorder (if one is running) and drain its ring.
    /// Called by shutdown *before* the applier is stopped, so the final
    /// drain sample observes the fully-applied metrics.
    fn drain_recorder(&self) -> Option<Timeline> {
        self.recorder.lock().take().map(Recorder::stop)
    }

    /// Bounded-drain shutdown: stop admissions, give the applier
    /// `cfg.drain_deadline` to finish what is queued, then abandon —
    /// answering every still-queued commit `EngineDown` and detaching
    /// the (stuck) applier thread rather than hanging the caller.
    fn shutdown(&self) {
        // Recorder first: its final sample drains while the queue and
        // applier state are still intact.
        drop(self.drain_recorder());
        self.shared.queue.begin_shutdown();
        let deadline = Instant::now() + self.shared.cfg.drain_deadline;
        if self.shared.queue.wait_applier_exit(deadline) {
            if let Some(h) = self.applier.lock().take() {
                let _ = h.join();
            }
        } else {
            for req in self.shared.queue.abandon() {
                req.answer(CommitOutcome::EngineDown(
                    "engine shut down before this commit was applied (drain deadline \
                     expired); nothing was staged"
                        .to_string(),
                ));
            }
            // Leave the applier detached: it is wedged in a batch (or a
            // hung fsync); when that returns it will observe `abandoned`
            // and exit. Joining here would trade a bounded shutdown for
            // an unbounded hang.
            drop(self.applier.lock().take());
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A multi-session MiniDBPL server over one shared, snapshot-published
/// database. Clone-free sharing: hand each connection a
/// [`Server::session`].
///
/// ```
/// use dbpl_lang::Server;
/// let server = Server::new().unwrap();
/// let mut a = server.session();
/// let mut b = server.session();
/// a.run("type Person = {Name: Str} put(db, dynamic {Name = 'amy'})")
///     .unwrap();
/// let out = b.run("len[Person](get[Person](db))").unwrap();
/// assert_eq!(out, vec!["1"]);
/// ```
pub struct Server {
    engine: Arc<Engine>,
}

impl Server {
    /// A server whose replicating store lives in a fresh temp directory.
    pub fn new() -> Result<Server, LangError> {
        let n = SERVER_COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("dbpl-server-{}-{n}", std::process::id()));
        Server::with_store_dir(dir)
    }

    /// A server over a specific store directory.
    pub fn with_store_dir(dir: impl AsRef<Path>) -> Result<Server, LangError> {
        Server::open_with(
            Arc::new(dbpl_persist::CountingVfs::new(dbpl_persist::StdVfs)),
            dir,
        )
    }

    /// A server over an explicit [`Vfs`] (fault injection, in-memory
    /// testing) with default capacity knobs.
    pub fn open_with(vfs: Arc<dyn Vfs>, dir: impl AsRef<Path>) -> Result<Server, LangError> {
        Server::open_with_config(vfs, dir, ServerConfig::default())
    }

    /// A server over an explicit [`Vfs`] and explicit [`ServerConfig`]
    /// capacity knobs.
    pub fn open_with_config(
        vfs: Arc<dyn Vfs>,
        dir: impl AsRef<Path>,
        cfg: ServerConfig,
    ) -> Result<Server, LangError> {
        Ok(Server {
            engine: Arc::new(Engine::open_with(vfs, dir, cfg)?),
        })
    }

    /// The capacity knobs this server was opened with.
    pub fn config(&self) -> &ServerConfig {
        &self.engine.shared.cfg
    }

    /// A new session over the shared engine, or an
    /// [`ErrorKind::Overloaded`](crate::ErrorKind::Overloaded) error if
    /// [`ServerConfig::max_sessions`] are already live. Dropping a
    /// session frees its slot.
    pub fn try_session(&self) -> Result<ServerSession, LangError> {
        let shared = &self.engine.shared;
        let prev = shared.sessions.fetch_add(1, Ordering::Relaxed);
        if prev as usize >= shared.cfg.max_sessions {
            shared.sessions.fetch_sub(1, Ordering::Relaxed);
            let AdmissionError::Overloaded { gate, depth } =
                CommitQueue::rejected("session_cap", prev as usize)
            else {
                unreachable!()
            };
            return Err(LangError::overloaded(format!(
                "session refused: engine overloaded ({gate}, {depth} sessions live)"
            )));
        }
        dbpl_obs::global().gauge("server.sessions").inc();
        Ok(ServerSession {
            engine: Arc::clone(&self.engine),
            out: Vec::new(),
            quarantined: Vec::new(),
            last_commit_epoch: None,
            txn_deadline: None,
            attribution: None,
        })
    }

    /// A new session over the shared engine. Sessions are independent
    /// (own output, own quarantine record) but read and write the same
    /// database through snapshots and the group-commit applier. Sessions
    /// are `Send`: hand one to each connection thread.
    ///
    /// # Panics
    ///
    /// Panics if [`ServerConfig::max_sessions`] sessions are already
    /// live; use [`Server::try_session`] to handle that as an error.
    pub fn session(&self) -> ServerSession {
        self.try_session()
            .expect("session table at capacity; use Server::try_session")
    }

    /// How many [`EngineState`] snapshots of this engine are currently
    /// alive (the published one plus every pinned reader copy). The
    /// per-engine view of the process-wide `snapshot.live` gauge.
    pub fn live_snapshots(&self) -> i64 {
        self.engine.shared.engine_live.load(Ordering::Relaxed)
    }

    /// Chaos knob: panic the applier while applying the `n`th frame it
    /// sees (1-based; 0 disarms). The panic is caught by per-frame
    /// supervision — only that frame aborts.
    #[doc(hidden)]
    pub fn chaos_panic_at_frame(&self, n: u64) {
        self.engine
            .shared
            .chaos
            .panic_frame_at
            .store(n, Ordering::Relaxed);
    }

    /// Chaos knob: panic the applier just before the `n`th batch's
    /// durable commit (1-based; 0 disarms). The panic escapes the batch,
    /// exercising applier-level supervision: the engine degrades and the
    /// batch's sessions all get definitive errors.
    #[doc(hidden)]
    pub fn chaos_panic_at_batch(&self, n: u64) {
        self.engine
            .shared
            .chaos
            .panic_batch_at
            .store(n, Ordering::Relaxed);
    }

    /// The currently published snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.engine.shared.snap.load().epoch
    }

    /// The engine's health: [`Health::Degraded`] after an environmental
    /// failure (disk full) flipped durable commits off. Sessions probe
    /// before enqueueing, so a degraded engine heals itself the moment
    /// the store is writable again.
    pub fn health(&self) -> Health {
        match &*self.engine.shared.degraded.lock() {
            None => Health::Healthy,
            Some(reason) => Health::Degraded {
                reason: reason.clone(),
            },
        }
    }

    /// Start recording the applier's log: the current database plus every
    /// subsequently applied frame in serialization order. Differential
    /// tests replay it with [`Server::check_frame_log_replay`].
    pub fn start_frame_log(&self) {
        let base = self.engine.shared.snap.load().db.clone();
        *self.engine.shared.frame_log.lock() = Some(FrameLog {
            base,
            frames: Vec::new(),
        });
    }

    /// Replay the recorded applier log single-threaded from its base
    /// state and check the result is equivalent to the current published
    /// snapshot. Returns the number of frames replayed.
    ///
    /// This is the engine's serializability witness: whatever interleaving
    /// the sessions produced, the published state must equal a sequential
    /// execution of the frames in the order the applier chose.
    pub fn check_frame_log_replay(&self) -> Result<usize, String> {
        // Hold no locks while replaying: clone the log out.
        let (base, frames) = {
            let guard = self.engine.shared.frame_log.lock();
            let log = guard.as_ref().ok_or("frame log was never started")?;
            (log.base.clone(), log.frames.clone())
        };
        let mut replayed = base;
        for (i, frame) in frames.iter().enumerate() {
            apply_frame(&mut replayed, frame).map_err(|e| format!("replaying frame {i}: {e}"))?;
        }
        let published = self.engine.shared.snap.load();
        db_equiv(&replayed, &published.db)?;
        Ok(frames.len())
    }

    /// Start a flight recorder over this server's lifetime: a background
    /// sampler snapshots the (process-global) metrics registry per
    /// `cfg.interval` into a bounded ring, evaluates `cfg.slos`, and
    /// emits [`dbpl_obs::Event::SloViolation`] when an objective starts
    /// failing. Replaces (and drains) any recorder already running.
    /// [`Server::shutdown`] stops it automatically, draining the final
    /// sample *before* the applier exits.
    pub fn start_recorder(&self, cfg: RecorderConfig) {
        let mut slot = self.engine.recorder.lock();
        if let Some(old) = slot.take() {
            drop(old.stop());
        }
        *slot = Some(Recorder::start(cfg));
    }

    /// Stop the flight recorder and return its drained [`Timeline`], or
    /// `None` if none was running.
    pub fn stop_recorder(&self) -> Option<Timeline> {
        self.engine.drain_recorder()
    }

    /// Shut the applier down and wait for it. Queued commits are
    /// processed first; sessions that enqueue afterwards get an error.
    /// Dropping the last `Server`/`ServerSession` shuts down implicitly.
    pub fn shutdown(self) {
        self.engine.shutdown();
    }
}

/// Structural equivalence of two databases: same dynamics, same schema,
/// same heap. (Used by the replay check; `Database` deliberately does not
/// implement `PartialEq`.)
fn db_equiv(a: &Database, b: &Database) -> Result<(), String> {
    if a.dynamics() != b.dynamics() {
        return Err(format!(
            "dynamic stores differ: {} vs {} elements (or content)",
            a.len(),
            b.len()
        ));
    }
    let defs_a: Vec<_> = a.env().definitions().collect();
    let defs_b: Vec<_> = b.env().definitions().collect();
    if defs_a != defs_b {
        return Err("schemas differ".to_string());
    }
    let heap_a: Vec<_> = a.heap().iter().collect();
    let heap_b: Vec<_> = b.heap().iter().collect();
    if heap_a != heap_b {
        return Err(format!(
            "heaps differ: {} vs {} objects (or content)",
            a.heap().len(),
            b.heap().len()
        ));
    }
    Ok(())
}

/// One session multiplexed over a [`Server`]'s shared engine.
///
/// Each [`ServerSession::run`] executes against a private MVCC snapshot;
/// a program that wrote anything commits through the engine's
/// group-commit applier, a pure read never leaves its snapshot. Output
/// accumulates in [`ServerSession::out`] exactly as in [`Session`].
pub struct ServerSession {
    engine: Arc<Engine>,
    /// Output produced by this session's programs (printing is an
    /// observable effect; it survives aborted transactions).
    pub out: Vec<String>,
    /// Corrupt store units this session's programs tripped over.
    quarantined: Vec<QuarantineEntry>,
    /// The epoch published for this session's most recent write commit.
    last_commit_epoch: Option<u64>,
    /// Wall-clock budget for each [`ServerSession::run`], measured from
    /// entry and **queue-aware**: waiting for admission and waiting in
    /// the commit queue both count. An expired deadline refuses to start
    /// the durability step — the commit fails `DeadlineExceeded` with
    /// nothing durable. `None` (the default) also means admission never
    /// waits: a full queue rejects `Overloaded` immediately.
    pub txn_deadline: Option<Duration>,
    /// Per-session metric attribution ([`ServerSession::set_label`]):
    /// cached counter handles so the hot path pays one relaxed add, not
    /// a registry lookup.
    attribution: Option<SessionTag>,
}

/// Cached attribution handles for a labeled session.
struct SessionTag {
    label: String,
    /// `server.session.<label>.commits` — durable-commit attempts
    /// offered to the admission gate (rejected attempts count: this is
    /// the "who saturated the queue" signal).
    commits: Arc<dbpl_obs::Counter>,
    /// `server.session.<label>.reads` — programs answered entirely from
    /// the session's snapshot (the pure-read fast path).
    reads: Arc<dbpl_obs::Counter>,
}

/// Sanitize a session label into a single metric-name segment:
/// characters outside `[A-Za-z0-9_-]` become `_` (a dot, in particular,
/// would splice extra segments into `server.session.<label>.commits`
/// and confuse the SLO engine's offender attribution). If anything was
/// replaced — or the label was empty — an 8-hex-digit FNV-1a hash of
/// the *original* label is appended, so two distinct raw labels that
/// sanitize alike (`"a b"` and `"a?b"`) still land on distinct metrics,
/// while already-clean labels pass through byte-for-byte.
pub fn sanitize_label(raw: &str) -> String {
    let cleaned: String = raw
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if !cleaned.is_empty() && cleaned == raw {
        return cleaned;
    }
    use std::hash::Hasher;
    let mut h = dbpl_stats::Fnv1a::new();
    h.write(raw.as_bytes());
    let stem = if cleaned.is_empty() {
        "session"
    } else {
        cleaned.as_str()
    };
    format!("{stem}-{:08x}", h.finish() as u32)
}

impl Drop for ServerSession {
    fn drop(&mut self) {
        self.engine.shared.sessions.fetch_sub(1, Ordering::Relaxed);
        dbpl_obs::global().gauge("server.sessions").dec();
    }
}

impl ServerSession {
    /// The epoch at which this session's most recent writing program was
    /// published, or `None` if it has not committed a write yet. Any
    /// snapshot at this epoch or later observes the commit — the handle a
    /// caller uses to reason about visibility across sessions.
    pub fn last_commit_epoch(&self) -> Option<u64> {
        self.last_commit_epoch
    }

    /// Attribute this session's activity in the metrics registry:
    /// subsequent runs bump `server.session.<label>.commits` (durable
    /// commit attempts offered to the admission gate, rejected ones
    /// included) and `server.session.<label>.reads` (programs answered
    /// purely from the snapshot). The flight recorder's SLO engine uses
    /// these to name the offending session in a violation. Labels are
    /// opt-in — metric cardinality is the caller's responsibility (use
    /// a connection or tenant id, not a per-request string).
    ///
    /// The label is sanitized into a valid metric-name segment first
    /// (see [`sanitize_label`]): characters outside `[A-Za-z0-9_-]` are
    /// replaced, and any altered label gains an FNV-1a suffix of the
    /// original so two distinct raw labels can never collide on one
    /// metric. [`ServerSession::label`] reports the sanitized form —
    /// the name the registry actually carries.
    pub fn set_label(&mut self, label: &str) {
        let label = sanitize_label(label);
        let reg = dbpl_obs::global();
        self.attribution = Some(SessionTag {
            commits: reg.counter(&format!("server.session.{label}.commits")),
            reads: reg.counter(&format!("server.session.{label}.reads")),
            label,
        });
    }

    /// The attribution label set via [`ServerSession::set_label`], if
    /// any.
    pub fn label(&self) -> Option<&str> {
        self.attribution.as_ref().map(|t| t.label.as_str())
    }

    /// Parse, type-check and run one program against a fresh snapshot,
    /// committing its effects (if any) through the group-commit applier.
    /// Returns the lines of output it produced. The program is one
    /// transaction: explicit `begin`/`commit`/`abort` are rejected.
    pub fn run(&mut self, src: &str) -> Result<Vec<String>, LangError> {
        // The transaction clock starts NOW: evaluation, admission
        // waiting, and queue waiting all spend the same budget.
        let deadline = self.txn_deadline.map(|d| Instant::now() + d);
        let state = self.engine.shared.snap.load();
        dbpl_obs::global().counter("snapshot.reads").inc();
        let mut worker =
            Session::for_engine(state.db.clone(), Arc::clone(&self.engine.shared.store));
        let staged = worker.run_staged(src);
        let out_lines = worker.out.clone();
        self.out.extend(worker.out.iter().cloned());
        self.quarantined
            .extend(worker.session_quarantined().iter().cloned());
        let externs = staged?;

        let frame = diff_frame(&state.db, &worker.db, externs, state.epoch)?;
        if frame.is_empty() {
            // A pure read never touches the applier: this is the
            // reader-scaling fast path.
            if let Some(tag) = &self.attribution {
                tag.reads.inc();
            }
            return Ok(out_lines);
        }
        // Attributed *before* admission: a rejected attempt still
        // pressured the queue, which is exactly what the SLO engine's
        // offender attribution wants to see.
        if let Some(tag) = &self.attribution {
            tag.commits.inc();
        }

        // Probe-first health gate (nothing queued behind a known-failing
        // store): a degraded engine refuses the enqueue outright unless
        // the probe shows the store healed.
        if let Err(msg) = self.engine.shared.check_writable() {
            return Err(LangError::eval(
                0,
                format!("commit refused, transaction aborted: {msg}"),
            ));
        }

        // A deadline that expired during evaluation refuses to start the
        // durability step at all — nothing enqueued, nothing staged.
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return Err(LangError::deadline_exceeded(
                    "transaction deadline expired before the commit was enqueued; \
                     nothing durable happened",
                ));
            }
        }

        let (reply_tx, reply_rx) = mpsc::channel();
        let req = CommitRequest {
            frame,
            reply: reply_tx,
            deadline,
            enqueued_at: Instant::now(),
        };
        self.engine
            .shared
            .queue
            .enqueue(req, deadline, &self.engine.shared.cfg)
            .map_err(|e| match e {
                AdmissionError::Overloaded { gate, depth } => LangError::overloaded(format!(
                    "commit not admitted, transaction aborted: engine overloaded \
                     ({gate}, queue depth {depth}); nothing was staged"
                )),
                AdmissionError::EngineDown => {
                    LangError::engine_down("engine is shut down; the commit was not enqueued")
                }
            })?;
        match reply_rx.recv() {
            Ok(CommitOutcome::Applied { epoch }) => {
                self.last_commit_epoch = Some(epoch);
                Ok(out_lines)
            }
            Ok(CommitOutcome::Conflict(msg)) => Err(LangError::eval(
                0,
                format!("commit conflict, transaction aborted: {msg}"),
            )),
            Ok(CommitOutcome::Refused(msg)) => Err(LangError::eval(
                0,
                format!("commit refused, transaction aborted: {msg}"),
            )),
            Ok(CommitOutcome::DeadlineExceeded { waited_ms }) => {
                Err(LangError::deadline_exceeded(format!(
                    "transaction deadline expired after {waited_ms} ms in the commit \
                     queue; dropped before the intent was written — nothing durable \
                     happened"
                )))
            }
            Ok(CommitOutcome::Aborted(msg)) => Err(LangError::eval(
                0,
                format!("commit failed, transaction aborted: {msg}"),
            )),
            Ok(CommitOutcome::EngineDown(msg)) => {
                Err(LangError::engine_down(format!("commit not applied: {msg}")))
            }
            Ok(CommitOutcome::InDoubt { txn_id, detail }) => Err(LangError::eval(
                0,
                format!(
                    "commit is in doubt, not aborted: durably logged as transaction \
                     {txn_id} but applying it failed ({detail}); it will be completed \
                     on recovery — commits are blocked until then"
                ),
            )),
            // The applier died (or was abandoned) with our reply sender
            // in hand: the unwound batch dropped it. Definitive: the
            // commit was not applied-and-published.
            Err(_) => Err(LangError::engine_down(
                "engine applier went down while the commit was in flight; \
                 the commit was not applied",
            )),
        }
    }

    /// Run a program, rendering any error against the source.
    pub fn run_pretty(&mut self, src: &str) -> Result<Vec<String>, String> {
        self.run(src).map_err(|e| e.render(src))
    }

    /// The snapshot this session would read right now (epoch + database).
    /// Consistent and immutable: queries against it never see later
    /// commits.
    pub fn snapshot(&self) -> Arc<EngineState> {
        dbpl_obs::global().counter("snapshot.reads").inc();
        self.engine.shared.snap.load()
    }

    /// The session's health — **applier-aware**: this reflects the shared
    /// engine, so one session's disk-full failure is visible to every
    /// session, and all of them refuse to enqueue (probe-first, nothing
    /// staged) until the store heals.
    pub fn health(&self) -> Health {
        match &*self.engine.shared.degraded.lock() {
            None => Health::Healthy,
            Some(reason) => Health::Degraded {
                reason: reason.clone(),
            },
        }
    }

    /// Corrupt store units this session's programs tripped over.
    pub fn quarantine_report(&self) -> dbpl_persist::QuarantineReport {
        dbpl_persist::QuarantineReport {
            entries: self.quarantined.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpl_persist::{FaultPlan, SimVfs};

    fn sim_server(plan: Option<FaultPlan>) -> (Server, SimVfs) {
        let vfs = SimVfs::new();
        if let Some(p) = plan {
            vfs.set_plan(p);
        }
        let server = Server::open_with(Arc::new(vfs.clone()), "/srv").unwrap();
        (server, vfs)
    }

    #[test]
    fn sessions_share_commits_through_snapshots() {
        let server = Server::new().unwrap();
        let mut a = server.session();
        let mut b = server.session();
        a.run("type Person = {Name: Str} put(db, dynamic {Name = 'amy'})")
            .unwrap();
        let out = b.run("len[Person](get[Person](db))").unwrap();
        assert_eq!(out, vec!["1"]);
        assert_eq!(server.epoch(), 1);
    }

    #[test]
    fn pure_reads_do_not_publish_epochs() {
        let server = Server::new().unwrap();
        let mut s = server.session();
        s.run("type T = {X: Int} put(db, dynamic {X = 1})").unwrap();
        let e = server.epoch();
        s.run("len[T](get[T](db))").unwrap();
        s.run("print('hello')").unwrap();
        assert_eq!(server.epoch(), e, "reads must not publish");
    }

    #[test]
    fn relabeling_mid_session_routes_bumps_to_the_new_label() {
        let g = dbpl_obs::global();
        let a_before = g.counter("server.session.tenant-a.commits").get();
        let b_before = g.counter("server.session.tenant-b.commits").get();
        let b_reads_before = g.counter("server.session.tenant-b.reads").get();
        let server = Server::new().unwrap();
        let mut s = server.session();
        s.set_label("tenant-a");
        s.run("type T = {X: Int} put(db, dynamic {X = 1})").unwrap();
        // Relabel mid-session: subsequent bumps must go to the new
        // label and only to it.
        s.set_label("tenant-b");
        s.run("put(db, dynamic {X = 2})").unwrap();
        s.run("len[T](get[T](db))").unwrap();
        assert_eq!(
            g.counter("server.session.tenant-a.commits").get() - a_before,
            1,
            "only the pre-relabel commit is attributed to tenant-a"
        );
        assert_eq!(
            g.counter("server.session.tenant-b.commits").get() - b_before,
            1,
            "the post-relabel commit moved to tenant-b"
        );
        assert_eq!(
            g.counter("server.session.tenant-b.reads").get() - b_reads_before,
            1,
            "the pure read is attributed to the current label"
        );
    }

    #[test]
    fn labels_are_sanitized_into_valid_metric_names() {
        let server = Server::new().unwrap();
        let mut s = server.session();
        s.set_label("löad 2!.x");
        let label = s.label().unwrap().to_string();
        assert!(
            label
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'),
            "sanitized label `{label}` is a single clean metric segment"
        );
        let before = dbpl_obs::global()
            .counter(&format!("server.session.{label}.commits"))
            .get();
        s.run("type S = {Y: Int} put(db, dynamic {Y = 1})").unwrap();
        assert_eq!(
            dbpl_obs::global()
                .counter(&format!("server.session.{label}.commits"))
                .get()
                - before,
            1,
            "bumps land on the sanitized metric name"
        );
    }

    #[test]
    fn sanitize_label_never_collides_distinct_raw_labels() {
        // Clean labels pass through untouched — the FNV-suffix scheme
        // must not perturb the labels the recorder already attributes.
        assert_eq!(sanitize_label("load-1"), "load-1");
        assert_eq!(sanitize_label("tenant_7"), "tenant_7");
        // Two raw labels that sanitize alike get distinct suffixes.
        let a = sanitize_label("a b");
        let b = sanitize_label("a?b");
        assert_ne!(a, b, "`a b` and `a?b` must not share a metric");
        assert!(a.starts_with("a_b-") && b.starts_with("a_b-"));
        // Dots are replaced (they would splice metric segments), and the
        // empty label still produces a usable stem.
        assert!(!sanitize_label("x.y").contains('.'));
        assert!(sanitize_label("").starts_with("session-"));
    }

    #[test]
    fn snapshots_are_immutable_while_writers_commit() {
        let server = Server::new().unwrap();
        let mut w = server.session();
        w.run("type T = {X: Int} put(db, dynamic {X = 1})").unwrap();
        let r = server.session();
        let snap = r.snapshot();
        let before = snap.db.len();
        w.run("put(db, dynamic {X = 2})").unwrap();
        assert_eq!(snap.db.len(), before, "held snapshot must not move");
        assert!(server.epoch() >= 2);
    }

    #[test]
    fn conflicting_decl_frames_fail_only_that_frame() {
        let server = Server::new().unwrap();
        let s = server.session();
        // Build two frames against the same base snapshot by hand.
        let state = s.snapshot();
        let mk = |ty: &str| {
            let mut w =
                Session::for_engine(state.db.clone(), Arc::clone(&server.engine.shared.store));
            let externs = w
                .run_staged(&format!("type T = {{X: {ty}}} put(db, dynamic {{X = 1}})"))
                .unwrap_or_default();
            diff_frame(&state.db, &w.db, externs, state.epoch).unwrap()
        };
        let f1 = mk("Int");
        let f2 = mk("Int"); // identical: idempotent
        let f3 = mk("Str"); // structurally different: conflict
        let send = |frame: Frame| {
            let (tx, rx) = mpsc::channel();
            server
                .engine
                .shared
                .queue
                .enqueue(
                    CommitRequest {
                        frame,
                        reply: tx,
                        deadline: None,
                        enqueued_at: Instant::now(),
                    },
                    None,
                    &server.engine.shared.cfg,
                )
                .unwrap();
            rx.recv().unwrap()
        };
        assert!(matches!(send(f1), CommitOutcome::Applied { .. }));
        assert!(matches!(send(f2), CommitOutcome::Applied { .. }));
        assert!(matches!(send(f3), CommitOutcome::Conflict(_)));
        // The conflicting frame aborted alone; the store still serves T.
        let mut s2 = server.session();
        assert_eq!(s2.run("len[T](get[T](db))").unwrap(), vec!["2"]);
    }

    #[test]
    fn interned_heap_objects_remap_across_frames() {
        let server = Server::new().unwrap();
        let mut a = server.session();
        // Extern a record, then two sessions intern it concurrently and
        // put the result — both allocate overlapping oids in their own
        // snapshots; the applier must remap, not collide.
        a.run("type P = {Name: Str} extern('p', dynamic {Name = 'x'})")
            .unwrap();
        let mut b = server.session();
        let mut c = server.session();
        b.run("put(db, intern('p'))").unwrap();
        c.run("put(db, intern('p'))").unwrap();
        let mut r = server.session();
        assert_eq!(r.run("len[P](get[P](db))").unwrap(), vec!["2"]);
    }

    #[test]
    fn frame_log_replay_matches_published_state() {
        let server = Server::new().unwrap();
        server.start_frame_log();
        let mut a = server.session();
        let mut b = server.session();
        a.run("type T = {X: Int} put(db, dynamic {X = 1})").unwrap();
        b.run("put(db, dynamic {X = 2})").unwrap();
        a.run("put(db, dynamic {X = 3})").unwrap();
        let n = server.check_frame_log_replay().unwrap();
        assert_eq!(n, 3);
    }

    #[test]
    fn degraded_engine_refuses_enqueue_probe_first() {
        let (server, vfs) = sim_server(None);
        let mut s = server.session();
        s.run("type T = {X: Int} extern('h1', dynamic {X = 1})")
            .unwrap();
        // Disk fills: the next durable commit fails pre-durability, the
        // engine degrades.
        vfs.set_plan(FaultPlan {
            enospc_at_op: Some(1),
            ..Default::default()
        });
        let err = s
            .run("extern('h2', dynamic {X = 2})")
            .expect_err("commit must fail on a full disk");
        assert!(err.to_string().contains("commit"), "{err}");
        assert!(server.health().is_degraded());
        assert!(s.health().is_degraded(), "health is applier-aware");
        // While degraded: enqueue is refused probe-first — the failing
        // op count must not advance past the probe's own writes, and
        // reads keep flowing.
        let err = s
            .run("extern('h3', dynamic {X = 3})")
            .expect_err("degraded engine must refuse");
        assert!(err.to_string().contains("refused"), "{err}");
        assert!(s.run("len[T](get[T](db))").is_ok(), "reads still work");
        // Space returns: the probe heals the engine and commits resume.
        vfs.set_plan(FaultPlan::default());
        s.run("extern('h4', dynamic {X = 4})").unwrap();
        assert!(!server.health().is_degraded());
    }

    #[test]
    fn in_doubt_group_commit_attributes_to_every_batch_member() {
        // Regression test (satellite): a persistent fsync failure after
        // the durability point must surface InDoubt to EVERY member of
        // the coalesced batch, not just the first frame in the queue.
        // Build three frames against one snapshot, then feed them to the
        // applier's batch path directly (racing real sessions against the
        // applier thread cannot force a 3-frame batch deterministically).
        // A persistent fsync failure armed at increasing op offsets sweeps
        // the commit across its durability boundary until the in-doubt
        // window is hit, crash-sweep style.
        let mut saw_in_doubt = false;
        'sweep: for fail_at in 1..200u64 {
            let vfs2 = SimVfs::new();
            let server2 = Server::open_with(Arc::new(vfs2.clone()), "/srv2").unwrap();
            let mut setup2 = server2.session();
            setup2
                .run("type T = {X: Int} extern('seed', dynamic {X = 0})")
                .unwrap();
            let state2 = server2.engine.shared.snap.load();
            let mut reqs = Vec::new();
            let mut rxs = Vec::new();
            for i in 0..3 {
                let mut w = Session::for_engine(
                    state2.db.clone(),
                    Arc::clone(&server2.engine.shared.store),
                );
                let externs = w
                    .run_staged(&format!("extern('h{i}', dynamic {{X = {i}}})"))
                    .unwrap();
                let frame = diff_frame(&state2.db, &w.db, externs, state2.epoch).unwrap();
                let (tx, rx) = mpsc::channel();
                reqs.push(CommitRequest {
                    frame,
                    reply: tx,
                    deadline: None,
                    enqueued_at: Instant::now(),
                });
                rxs.push(rx);
            }
            let base_ops = vfs2.ops();
            vfs2.set_plan(FaultPlan {
                fail_fsync_at_op: Some(base_ops + fail_at),
                ..Default::default()
            });
            apply_batch(&server2.engine.shared, reqs);
            let outcomes: Vec<CommitOutcome> =
                rxs.into_iter().map(|rx| rx.recv().unwrap()).collect();
            let in_doubt = outcomes
                .iter()
                .filter(|o| matches!(o, CommitOutcome::InDoubt { .. }))
                .count();
            if in_doubt > 0 {
                // The regression: in-doubt must cover the WHOLE batch.
                assert_eq!(
                    in_doubt, 3,
                    "in-doubt attributed to only {in_doubt}/3 members at fail_at={fail_at}: {outcomes:?}"
                );
                // All members share the same coalesced transaction id.
                let ids: std::collections::BTreeSet<u64> = outcomes
                    .iter()
                    .map(|o| match o {
                        CommitOutcome::InDoubt { txn_id, .. } => *txn_id,
                        _ => unreachable!(),
                    })
                    .collect();
                assert_eq!(ids.len(), 1, "one batch, one txn id");
                saw_in_doubt = true;
                break 'sweep;
            }
        }
        assert!(
            saw_in_doubt,
            "sweep never produced an in-doubt batch; fault plan is miswired"
        );
    }

    #[test]
    fn explicit_txn_statements_are_rejected() {
        let server = Server::new().unwrap();
        let mut s = server.session();
        let err = s.run("begin put(db, dynamic 1) commit").unwrap_err();
        assert!(err.to_string().contains("not supported"), "{err}");
    }

    #[test]
    fn shutdown_drains_queued_commits() {
        let server = Server::new().unwrap();
        let mut s = server.session();
        s.run("type T = {X: Int} put(db, dynamic {X = 1})").unwrap();
        server.shutdown();
    }

    #[test]
    fn recorder_attributes_labeled_sessions_and_drains_on_shutdown() {
        use dbpl_obs::timeline::RecorderConfig;
        let server = Server::new().unwrap();
        server.start_recorder(RecorderConfig {
            interval: Duration::from_millis(2),
            capacity: 256,
            slos: Vec::new(),
        });
        let mut s = server.session();
        s.set_label("rec-test");
        assert_eq!(s.label(), Some("rec-test"));
        let commits = dbpl_obs::global().counter("server.session.rec-test.commits");
        let reads = dbpl_obs::global().counter("server.session.rec-test.reads");
        let (c0, r0) = (commits.get(), reads.get());
        s.run("type T = {X: Int} put(db, dynamic {X = 1})").unwrap();
        s.run("len[T](get[T](db))").unwrap();
        assert_eq!(commits.get(), c0 + 1, "one attributed commit attempt");
        assert_eq!(reads.get(), r0 + 1, "one attributed pure read");
        // The MiniDBPL view of the live ring (a Str value, rendered
        // quoted by the session).
        let out = s.run("timeline(db)").unwrap();
        assert!(
            out[0].trim_matches('\'').starts_with("timeline: "),
            "timeline(db) renders the ring: {}",
            out[0]
        );
        // Shutdown stops the recorder before the applier exits; a second
        // stop finds nothing.
        drop(s);
        let timeline = server.stop_recorder().expect("recorder was running");
        assert!(!timeline.samples.is_empty(), "drain sample always lands");
        let attributed: u64 = timeline
            .samples
            .iter()
            .map(|smp| smp.delta.counter("server.session.rec-test.commits"))
            .sum();
        assert!(attributed >= 1, "the commit shows up in the timeline");
        assert!(server.stop_recorder().is_none());
        server.shutdown();
    }

    #[test]
    fn timeline_builtin_without_recorder_says_so() {
        let server = Server::new().unwrap();
        let mut s = server.session();
        let out = s.run("timeline(db)").unwrap();
        // Another test's recorder may be live in this process; accept
        // either answer but require the builtin to respond coherently.
        let text = out[0].trim_matches('\'');
        assert!(
            text == "timeline: no recorder active" || text.starts_with("timeline: "),
            "{text}"
        );
    }

    #[test]
    fn stats_builtins_render_catalog_and_workload() {
        let server = Server::new().unwrap();
        let mut s = server.session();
        s.run(concat!(
            "type Person = {Name: Str, Age: Int} ",
            "put(db, dynamic {Name = 'amy', Age = 30}) ",
            "put(db, dynamic {Name = 'bob', Age = 41}) ",
            "len[Person](get[Person](db))",
        ))
        .unwrap();
        let out = s.run("extentStats(db)").unwrap();
        let text = out[0].trim_matches('\'').to_string();
        // Dynamics carry their structural record type; both rows share it.
        assert!(text.contains("Age") && text.contains("Name"), "{text}");
        assert!(text.contains("rows=2"), "{text}");
        assert!(text.contains("distinct~2"), "{text}");
        let out = s.run("analyze(db)").unwrap();
        let text = out[0].trim_matches('\'').to_string();
        assert!(text.starts_with("analyze: rebuilt statistics"), "{text}");
        let out = s.run("workload(db)").unwrap();
        let text = out[0].trim_matches('\'').to_string();
        assert!(text.starts_with("workload: "), "{text}");
        // The Get above went through the query log; its fingerprint is
        // visible among the heavy hitters (other tests share the global
        // log, so only membership is stable).
        assert!(text.contains("get:"), "{text}");
    }

    #[test]
    fn shutdown_with_running_recorder_is_clean() {
        use dbpl_obs::timeline::RecorderConfig;
        let server = Server::new().unwrap();
        server.start_recorder(RecorderConfig {
            interval: Duration::from_millis(2),
            capacity: 16,
            slos: Vec::new(),
        });
        let mut s = server.session();
        s.run("type T = {X: Int} put(db, dynamic {X = 1})").unwrap();
        drop(s);
        // No explicit stop_recorder: shutdown must drain it itself.
        server.shutdown();
    }
}
