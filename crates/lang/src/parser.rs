//! Recursive-descent parser for MiniDBPL.
//!
//! Top-level `let` binds a session variable; expression-level
//! `let … in …` is scoped. Multi-parameter functions and calls are
//! curried by the parser, so the checker and evaluator deal only with
//! unary functions.

use crate::ast::{BinOp, Expr, ExprKind, Item, Program};
use crate::error::LangError;
use crate::token::{lex, Spanned, Tok};
use dbpl_types::{Fields, Type};

/// Parse a whole program.
pub fn parse_program(src: &str) -> Result<Program, LangError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut items = Vec::new();
    while p.peek() != &Tok::Eof {
        items.push(p.item()?);
        // optional separators between items
        while p.peek() == &Tok::Semi {
            p.bump();
        }
    }
    Ok(Program { items })
}

/// Parse a single expression (used by tests and the REPL-style driver).
pub fn parse_expr(src: &str) -> Result<Expr, LangError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    p.expect(Tok::Eof)?;
    Ok(e)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn at(&self) -> usize {
        self.toks[self.pos].at
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok) -> Result<(), LangError> {
        if self.peek() == &want {
            self.bump();
            Ok(())
        } else {
            Err(LangError::parse(
                self.at(),
                format!("expected `{want}`, found `{}`", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(LangError::parse(
                self.at(),
                format!("expected identifier, found `{other}`"),
            )),
        }
    }

    // ---------- items ----------

    fn item(&mut self) -> Result<Item, LangError> {
        let at = self.at();
        match self.peek() {
            Tok::Type => {
                self.bump();
                let name = self.ident()?;
                self.expect(Tok::Eq)?;
                let ty = self.ty()?;
                Ok(Item::TypeDecl { at, name, ty })
            }
            Tok::Include => {
                self.bump();
                let sub = self.ident()?;
                self.expect(Tok::In)?;
                let sup = self.ident()?;
                Ok(Item::Include { at, sub, sup })
            }
            Tok::Let => {
                self.bump();
                let name = self.ident()?;
                let ann = if self.peek() == &Tok::Colon {
                    self.bump();
                    Some(self.ty()?)
                } else {
                    None
                };
                self.expect(Tok::Eq)?;
                let expr = self.expr()?;
                Ok(Item::Let {
                    at,
                    name,
                    ann,
                    expr,
                })
            }
            Tok::Fun => {
                self.bump();
                let name = self.ident()?;
                let mut tparams = Vec::new();
                if self.peek() == &Tok::LBracket {
                    self.bump();
                    loop {
                        let v = self.ident()?;
                        let bound = if self.peek() == &Tok::Le {
                            self.bump();
                            Some(self.ty_atom()?)
                        } else {
                            None
                        };
                        tparams.push((v, bound));
                        if self.peek() == &Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(Tok::RBracket)?;
                }
                self.expect(Tok::LParen)?;
                let mut params = Vec::new();
                if self.peek() != &Tok::RParen {
                    loop {
                        let x = self.ident()?;
                        self.expect(Tok::Colon)?;
                        let t = self.ty()?;
                        params.push((x, t));
                        if self.peek() == &Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(Tok::RParen)?;
                self.expect(Tok::Colon)?;
                let result = self.ty()?;
                self.expect(Tok::Eq)?;
                let body = self.expr()?;
                Ok(Item::FunDecl {
                    at,
                    name,
                    tparams,
                    params,
                    result,
                    body,
                })
            }
            Tok::Begin => {
                self.bump();
                Ok(Item::Begin { at })
            }
            Tok::Commit => {
                self.bump();
                Ok(Item::Commit { at })
            }
            Tok::Abort => {
                self.bump();
                Ok(Item::Abort { at })
            }
            _ => Ok(Item::Expr(self.expr()?)),
        }
    }

    // ---------- types ----------

    fn ty(&mut self) -> Result<Type, LangError> {
        match self.peek() {
            Tok::Forall | Tok::Exists => {
                let is_forall = self.peek() == &Tok::Forall;
                self.bump();
                let v = self.ident()?;
                let bound = if self.peek() == &Tok::Le {
                    self.bump();
                    Some(self.ty_atom()?)
                } else {
                    None
                };
                self.expect(Tok::Dot)?;
                let body = self.ty()?;
                Ok(if is_forall {
                    Type::forall(v, bound, body)
                } else {
                    Type::exists(v, bound, body)
                })
            }
            _ => {
                let lhs = self.ty_atom()?;
                if self.peek() == &Tok::Arrow {
                    self.bump();
                    let rhs = self.ty()?;
                    Ok(Type::fun(lhs, rhs))
                } else {
                    Ok(lhs)
                }
            }
        }
    }

    fn ty_atom(&mut self) -> Result<Type, LangError> {
        let at = self.at();
        match self.bump() {
            Tok::LParen => {
                let t = self.ty()?;
                self.expect(Tok::RParen)?;
                Ok(t)
            }
            Tok::LBrace => {
                let mut fields = Fields::new();
                if self.peek() != &Tok::RBrace {
                    loop {
                        let l = self.ident()?;
                        self.expect(Tok::Colon)?;
                        let t = self.ty()?;
                        if fields.insert(l.clone(), t).is_some() {
                            return Err(LangError::parse(at, format!("duplicate field `{l}`")));
                        }
                        if self.peek() == &Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(Tok::RBrace)?;
                Ok(Type::Record(fields))
            }
            Tok::Ident(name) => match name.as_str() {
                "Int" => Ok(Type::Int),
                "Float" => Ok(Type::Float),
                "Bool" => Ok(Type::Bool),
                "Str" => Ok(Type::Str),
                "Unit" => Ok(Type::Unit),
                "Top" => Ok(Type::Top),
                "Bottom" => Ok(Type::Bottom),
                "List" | "Set" => {
                    self.expect(Tok::LBracket)?;
                    let t = self.ty()?;
                    self.expect(Tok::RBracket)?;
                    Ok(if name == "List" {
                        Type::list(t)
                    } else {
                        Type::set(t)
                    })
                }
                _ => {
                    if name.as_bytes()[0].is_ascii_uppercase() {
                        Ok(Type::named(name))
                    } else {
                        Ok(Type::var(name))
                    }
                }
            },
            Tok::Dynamic => Ok(Type::Dynamic),
            Tok::Lt => {
                // Variant type: <A: T | B: U>
                let mut arms = Fields::new();
                loop {
                    let l = self.ident()?;
                    self.expect(Tok::Colon)?;
                    let t = self.ty()?;
                    if arms.insert(l.clone(), t).is_some() {
                        return Err(LangError::parse(at, format!("duplicate arm `{l}`")));
                    }
                    if self.peek() == &Tok::Pipe {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(Tok::Gt)?;
                Ok(Type::Variant(arms))
            }
            other => Err(LangError::parse(
                at,
                format!("expected a type, found `{other}`"),
            )),
        }
    }

    // ---------- expressions ----------

    fn expr(&mut self) -> Result<Expr, LangError> {
        let at = self.at();
        match self.peek() {
            Tok::If => {
                self.bump();
                let c = self.expr()?;
                self.expect(Tok::Then)?;
                let t = self.expr()?;
                self.expect(Tok::Else)?;
                let e = self.expr()?;
                Ok(Expr::new(
                    at,
                    ExprKind::If(Box::new(c), Box::new(t), Box::new(e)),
                ))
            }
            Tok::Let => {
                self.bump();
                let x = self.ident()?;
                let ann = if self.peek() == &Tok::Colon {
                    self.bump();
                    Some(self.ty()?)
                } else {
                    None
                };
                self.expect(Tok::Eq)?;
                let bound = self.expr()?;
                self.expect(Tok::In)?;
                let body = self.expr()?;
                Ok(Expr::new(
                    at,
                    ExprKind::Let(x, ann, Box::new(bound), Box::new(body)),
                ))
            }
            Tok::Fn => {
                self.bump();
                self.expect(Tok::LParen)?;
                let mut params = Vec::new();
                loop {
                    let x = self.ident()?;
                    self.expect(Tok::Colon)?;
                    let t = self.ty()?;
                    params.push((x, t));
                    if self.peek() == &Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(Tok::RParen)?;
                self.expect(Tok::FatArrow)?;
                let body = self.expr()?;
                // Curry.
                let mut e = body;
                for (x, t) in params.into_iter().rev() {
                    e = Expr::new(at, ExprKind::Lambda(x, t, Box::new(e)));
                }
                Ok(e)
            }
            Tok::Coerce => {
                self.bump();
                let e = self.or_expr()?;
                self.expect(Tok::To)?;
                let t = self.ty()?;
                Ok(Expr::new(at, ExprKind::CoerceE(Box::new(e), t)))
            }
            Tok::Case => {
                self.bump();
                let scrutinee = self.expr()?;
                self.expect(Tok::Of)?;
                let mut arms = Vec::new();
                loop {
                    let label = self.ident()?;
                    let binder = self.ident()?;
                    self.expect(Tok::FatArrow)?;
                    let body = self.expr()?;
                    arms.push((label, binder, body));
                    if self.peek() == &Tok::Pipe {
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(Expr::new(at, ExprKind::CaseE(Box::new(scrutinee), arms)))
            }
            _ => self.or_expr(),
        }
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &Tok::Or {
            let at = self.at();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::new(at, ExprKind::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == &Tok::And {
            let at = self.at();
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::new(at, ExprKind::Bin(BinOp::And, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, LangError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::EqEq => Some(BinOp::Eq),
            Tok::Ne => Some(BinOp::Ne),
            Tok::Lt => Some(BinOp::Lt),
            Tok::Le => Some(BinOp::Le),
            Tok::Gt => Some(BinOp::Gt),
            Tok::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            let at = self.at();
            self.bump();
            let rhs = self.add_expr()?;
            Ok(Expr::new(
                at,
                ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)),
            ))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                Tok::PlusPlus => BinOp::Concat,
                _ => break,
            };
            let at = self.at();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::new(at, ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => break,
            };
            let at = self.at();
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::new(at, ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        let at = self.at();
        match self.peek() {
            Tok::Not => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::new(at, ExprKind::Not(Box::new(e))))
            }
            Tok::Minus => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::new(at, ExprKind::Neg(Box::new(e))))
            }
            Tok::Dynamic => {
                self.bump();
                let e = self.postfix_expr()?;
                Ok(Expr::new(at, ExprKind::DynamicE(Box::new(e))))
            }
            Tok::Typeof => {
                self.bump();
                let e = self.postfix_expr()?;
                Ok(Expr::new(at, ExprKind::TypeofE(Box::new(e))))
            }
            Tok::Tag => {
                self.bump();
                let label = self.ident()?;
                let e = self.postfix_expr()?;
                Ok(Expr::new(at, ExprKind::TagE(label, Box::new(e))))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, LangError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Tok::Dot => {
                    let at = self.at();
                    self.bump();
                    let field = self.ident()?;
                    e = Expr::new(at, ExprKind::Field(Box::new(e), field));
                }
                Tok::LParen => {
                    let at = self.at();
                    self.bump();
                    if self.peek() == &Tok::RParen {
                        self.bump();
                        e = Expr::new(
                            at,
                            ExprKind::App(Box::new(e), Box::new(Expr::new(at, ExprKind::Unit))),
                        );
                    } else {
                        loop {
                            let arg = self.expr()?;
                            e = Expr::new(at, ExprKind::App(Box::new(e), Box::new(arg)));
                            if self.peek() == &Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                        self.expect(Tok::RParen)?;
                    }
                }
                Tok::LBracket => {
                    let at = self.at();
                    self.bump();
                    let t = self.ty()?;
                    self.expect(Tok::RBracket)?;
                    e = Expr::new(at, ExprKind::TyApp(Box::new(e), t));
                }
                Tok::With => {
                    let at = self.at();
                    self.bump();
                    self.expect(Tok::LBrace)?;
                    let fields = self.record_fields()?;
                    e = Expr::new(at, ExprKind::With(Box::new(e), fields));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn record_fields(&mut self) -> Result<Vec<(String, Expr)>, LangError> {
        let mut fields = Vec::new();
        if self.peek() != &Tok::RBrace {
            loop {
                let l = self.ident()?;
                self.expect(Tok::Eq)?;
                let v = self.expr()?;
                fields.push((l, v));
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RBrace)?;
        Ok(fields)
    }

    fn primary(&mut self) -> Result<Expr, LangError> {
        let at = self.at();
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(Expr::new(at, ExprKind::Int(i)))
            }
            Tok::Float(x) => {
                self.bump();
                Ok(Expr::new(at, ExprKind::Float(x)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::new(at, ExprKind::Str(s)))
            }
            Tok::Bool(b) => {
                self.bump();
                Ok(Expr::new(at, ExprKind::Bool(b)))
            }
            Tok::Ident(x) => {
                self.bump();
                Ok(Expr::new(at, ExprKind::Var(x)))
            }
            Tok::Extern => {
                self.bump();
                self.expect(Tok::LParen)?;
                let h = self.expr()?;
                self.expect(Tok::Comma)?;
                let v = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(Expr::new(at, ExprKind::ExternE(Box::new(h), Box::new(v))))
            }
            Tok::Intern => {
                self.bump();
                self.expect(Tok::LParen)?;
                let h = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(Expr::new(at, ExprKind::InternE(Box::new(h))))
            }
            Tok::LParen => {
                self.bump();
                if self.peek() == &Tok::RParen {
                    self.bump();
                    return Ok(Expr::new(at, ExprKind::Unit));
                }
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::LBrace => {
                self.bump();
                let fields = self.record_fields()?;
                Ok(Expr::new(at, ExprKind::Record(fields)))
            }
            Tok::LBracket => {
                self.bump();
                let mut items = Vec::new();
                if self.peek() != &Tok::RBracket {
                    loop {
                        items.push(self.expr()?);
                        if self.peek() == &Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(Tok::RBracket)?;
                Ok(Expr::new(at, ExprKind::List(items)))
            }
            // Nested keyword expressions (if/let/fn/coerce) may start a
            // primary position through parentheses; direct heads are
            // handled in `expr`.
            other => Err(LangError::parse(at, format!("unexpected `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_parse() {
        let p = parse_program(
            "type Person = {Name: Str}\n\
             include Employee in Person\n\
             let x = 1\n\
             fun id[t](x: t): t = x\n\
             x + 1",
        )
        .unwrap();
        assert_eq!(p.items.len(), 5);
        assert!(matches!(p.items[0], Item::TypeDecl { .. }));
        assert!(matches!(p.items[1], Item::Include { .. }));
        assert!(matches!(p.items[2], Item::Let { .. }));
        assert!(matches!(p.items[3], Item::FunDecl { .. }));
        assert!(matches!(p.items[4], Item::Expr(_)));
    }

    #[test]
    fn precedence() {
        let e = parse_expr("1 + 2 * 3 == 7 and true").unwrap();
        // ((1 + (2*3)) == 7) and true
        match e.node {
            ExprKind::Bin(BinOp::And, l, _) => match l.node {
                ExprKind::Bin(BinOp::Eq, ll, _) => {
                    assert!(matches!(ll.node, ExprKind::Bin(BinOp::Add, _, _)));
                }
                other => panic!("expected ==, got {other:?}"),
            },
            other => panic!("expected and, got {other:?}"),
        }
    }

    #[test]
    fn calls_curry() {
        let e = parse_expr("f(1, 2)").unwrap();
        match e.node {
            ExprKind::App(f1, a2) => {
                assert!(matches!(a2.node, ExprKind::Int(2)));
                assert!(matches!(f1.node, ExprKind::App(_, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lambdas_curry() {
        let e = parse_expr("fn(x: Int, y: Int) => x + y").unwrap();
        match e.node {
            ExprKind::Lambda(x, _, body) => {
                assert_eq!(x, "x");
                assert!(matches!(body.node, ExprKind::Lambda(_, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn postfix_chains() {
        let e = parse_expr("get[Employee](db)").unwrap();
        match e.node {
            ExprKind::App(f, _) => assert!(matches!(f.node, ExprKind::TyApp(_, _))),
            other => panic!("{other:?}"),
        }
        let e2 = parse_expr("p.Address.City").unwrap();
        assert!(matches!(e2.node, ExprKind::Field(_, _)));
        let e3 = parse_expr("p with {Empno = 1}").unwrap();
        assert!(matches!(e3.node, ExprKind::With(_, _)));
    }

    #[test]
    fn dynamic_and_coerce() {
        let e = parse_expr("dynamic 3").unwrap();
        assert!(matches!(e.node, ExprKind::DynamicE(_)));
        let e2 = parse_expr("coerce d to Int").unwrap();
        assert!(matches!(e2.node, ExprKind::CoerceE(_, _)));
        let e3 = parse_expr("typeof d").unwrap();
        assert!(matches!(e3.node, ExprKind::TypeofE(_)));
    }

    #[test]
    fn persistence_forms() {
        let e = parse_expr("extern('DBFile', dynamic d)").unwrap();
        assert!(matches!(e.node, ExprKind::ExternE(_, _)));
        let e2 = parse_expr("intern('DBFile')").unwrap();
        assert!(matches!(e2.node, ExprKind::InternE(_)));
    }

    #[test]
    fn let_in_expression() {
        let e = parse_expr("let x = 1 in x + x").unwrap();
        assert!(matches!(e.node, ExprKind::Let(_, None, _, _)));
        let e2 = parse_expr("let x: Int = 1 in x").unwrap();
        assert!(matches!(e2.node, ExprKind::Let(_, Some(Type::Int), _, _)));
    }

    #[test]
    fn record_and_list_literals() {
        let e = parse_expr("{Name = 'J Doe', Age = 40}").unwrap();
        assert!(matches!(e.node, ExprKind::Record(ref fs) if fs.len() == 2));
        let e2 = parse_expr("[1, 2, 3]").unwrap();
        assert!(matches!(e2.node, ExprKind::List(ref xs) if xs.len() == 3));
        let unit = parse_expr("()").unwrap();
        assert!(matches!(unit.node, ExprKind::Unit));
    }

    #[test]
    fn type_syntax_in_annotations() {
        let p =
            parse_program("let f: {Name: Str} -> List[Int] = fn(x: {Name: Str}) => [1]").unwrap();
        match &p.items[0] {
            Item::Let { ann: Some(t), .. } => {
                assert_eq!(t.to_string(), "{Name: Str} -> List[Int]");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_have_positions() {
        let err = parse_expr("1 +").unwrap_err();
        assert!(err.at >= 2);
        assert!(parse_program("type = Int").is_err());
    }

    #[test]
    fn nullary_call_passes_unit() {
        let e = parse_expr("f()").unwrap();
        match e.node {
            ExprKind::App(_, arg) => assert!(matches!(arg.node, ExprKind::Unit)),
            other => panic!("{other:?}"),
        }
    }
}
