//! Errors for MiniDBPL, each carrying a byte offset into the source.

use std::fmt;

/// Which phase produced the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
    /// Static type checking.
    Check,
    /// Evaluation.
    Eval,
}

/// A language-processing error.
#[derive(Debug, Clone, PartialEq)]
pub struct LangError {
    /// The phase.
    pub phase: Phase,
    /// Byte offset into the source.
    pub at: usize,
    /// Message.
    pub msg: String,
}

impl LangError {
    /// A lexical error.
    pub fn lex(at: usize, msg: impl Into<String>) -> LangError {
        LangError {
            phase: Phase::Lex,
            at,
            msg: msg.into(),
        }
    }

    /// A parse error.
    pub fn parse(at: usize, msg: impl Into<String>) -> LangError {
        LangError {
            phase: Phase::Parse,
            at,
            msg: msg.into(),
        }
    }

    /// A type error.
    pub fn check(at: usize, msg: impl Into<String>) -> LangError {
        LangError {
            phase: Phase::Check,
            at,
            msg: msg.into(),
        }
    }

    /// A runtime error.
    pub fn eval(at: usize, msg: impl Into<String>) -> LangError {
        LangError {
            phase: Phase::Eval,
            at,
            msg: msg.into(),
        }
    }

    /// Render with a line/column computed against the source text.
    pub fn render(&self, src: &str) -> String {
        let mut line = 1usize;
        let mut col = 1usize;
        for (i, c) in src.char_indices() {
            if i >= self.at {
                break;
            }
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        let phase = match self.phase {
            Phase::Lex => "lexical",
            Phase::Parse => "parse",
            Phase::Check => "type",
            Phase::Eval => "runtime",
        };
        format!("{phase} error at {line}:{col}: {}", self.msg)
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lexical",
            Phase::Parse => "parse",
            Phase::Check => "type",
            Phase::Eval => "runtime",
        };
        write!(f, "{phase} error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_computes_line_and_column() {
        let src = "line one\nline two";
        let e = LangError::check(9, "boom");
        assert_eq!(e.render(src), "type error at 2:1: boom");
        let e2 = LangError::parse(2, "x");
        assert_eq!(e2.render(src), "parse error at 1:3: x");
    }
}
