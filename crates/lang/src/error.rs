//! Errors for MiniDBPL, each carrying a byte offset into the source.

use std::fmt;

/// Which phase produced the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
    /// Static type checking.
    Check,
    /// Evaluation.
    Eval,
}

/// Machine-checkable classification of a runtime error, beyond the
/// phase. Most errors are [`ErrorKind::General`]; the engine's admission
/// and supervision paths tag theirs so callers can branch on *why* a
/// commit failed (retry later vs. give up vs. reconnect) without string
/// matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorKind {
    /// No specific classification.
    #[default]
    General,
    /// The engine shed load: the commit queue (or session table) was at
    /// capacity and the request could not be admitted within its
    /// deadline. Nothing was staged; retrying later is safe.
    Overloaded,
    /// The transaction's wall-clock deadline expired before its
    /// durability step started. Nothing durable happened.
    DeadlineExceeded,
    /// The engine (applier thread) is shut down or died; the commit was
    /// definitively not applied durably-and-published. Reconnect or
    /// restart the server.
    EngineDown,
}

/// A language-processing error.
#[derive(Debug, Clone, PartialEq)]
pub struct LangError {
    /// The phase.
    pub phase: Phase,
    /// Byte offset into the source.
    pub at: usize,
    /// Message.
    pub msg: String,
    /// Machine-checkable classification (admission control, deadlines,
    /// engine lifecycle). [`ErrorKind::General`] for ordinary errors.
    pub kind: ErrorKind,
}

impl LangError {
    /// A lexical error.
    pub fn lex(at: usize, msg: impl Into<String>) -> LangError {
        LangError {
            phase: Phase::Lex,
            at,
            msg: msg.into(),
            kind: ErrorKind::General,
        }
    }

    /// A parse error.
    pub fn parse(at: usize, msg: impl Into<String>) -> LangError {
        LangError {
            phase: Phase::Parse,
            at,
            msg: msg.into(),
            kind: ErrorKind::General,
        }
    }

    /// A type error.
    pub fn check(at: usize, msg: impl Into<String>) -> LangError {
        LangError {
            phase: Phase::Check,
            at,
            msg: msg.into(),
            kind: ErrorKind::General,
        }
    }

    /// A runtime error.
    pub fn eval(at: usize, msg: impl Into<String>) -> LangError {
        LangError {
            phase: Phase::Eval,
            at,
            msg: msg.into(),
            kind: ErrorKind::General,
        }
    }

    /// A runtime error with an explicit [`ErrorKind`].
    pub fn eval_kind(kind: ErrorKind, msg: impl Into<String>) -> LangError {
        LangError {
            phase: Phase::Eval,
            at: 0,
            msg: msg.into(),
            kind,
        }
    }

    /// An [`ErrorKind::Overloaded`] admission rejection.
    pub fn overloaded(msg: impl Into<String>) -> LangError {
        LangError::eval_kind(ErrorKind::Overloaded, msg)
    }

    /// An [`ErrorKind::DeadlineExceeded`] expiry.
    pub fn deadline_exceeded(msg: impl Into<String>) -> LangError {
        LangError::eval_kind(ErrorKind::DeadlineExceeded, msg)
    }

    /// An [`ErrorKind::EngineDown`] lifecycle error.
    pub fn engine_down(msg: impl Into<String>) -> LangError {
        LangError::eval_kind(ErrorKind::EngineDown, msg)
    }

    /// Whether this error is an admission-control rejection.
    pub fn is_overloaded(&self) -> bool {
        self.kind == ErrorKind::Overloaded
    }

    /// Whether this error is a transaction-deadline expiry.
    pub fn is_deadline_exceeded(&self) -> bool {
        self.kind == ErrorKind::DeadlineExceeded
    }

    /// Whether this error means the engine is gone.
    pub fn is_engine_down(&self) -> bool {
        self.kind == ErrorKind::EngineDown
    }

    /// Render with a line/column computed against the source text.
    pub fn render(&self, src: &str) -> String {
        let mut line = 1usize;
        let mut col = 1usize;
        for (i, c) in src.char_indices() {
            if i >= self.at {
                break;
            }
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        let phase = match self.phase {
            Phase::Lex => "lexical",
            Phase::Parse => "parse",
            Phase::Check => "type",
            Phase::Eval => "runtime",
        };
        format!("{phase} error at {line}:{col}: {}", self.msg)
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lexical",
            Phase::Parse => "parse",
            Phase::Check => "type",
            Phase::Eval => "runtime",
        };
        write!(f, "{phase} error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_computes_line_and_column() {
        let src = "line one\nline two";
        let e = LangError::check(9, "boom");
        assert_eq!(e.render(src), "type error at 2:1: boom");
        let e2 = LangError::parse(2, "x");
        assert_eq!(e2.render(src), "parse error at 1:3: x");
    }
}
