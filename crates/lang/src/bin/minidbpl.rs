//! The MiniDBPL command-line driver.
//!
//! ```text
//! minidbpl script.dbpl …      run scripts in one shared session
//! minidbpl                    interactive REPL (`:quit` to exit;
//!                             `:schema` lists declared types)
//! minidbpl --store DIR …     put the replicating store at DIR, so
//!                             handles survive across invocations
//! ```
//!
//! Every script (and every REPL line) is a *program* in the paper's
//! sense: variables are per-program, while the database, the schema and
//! the externed handles persist in the session — and, with `--store`,
//! across process invocations.

use dbpl_lang::Session;
use std::io::{BufRead, Write};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut store_dir: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--store") {
        args.remove(pos);
        if pos < args.len() {
            store_dir = Some(args.remove(pos));
        } else {
            eprintln!("--store requires a directory");
            std::process::exit(2);
        }
    }

    let mut session = match &store_dir {
        Some(dir) => Session::with_store_dir(dir),
        None => Session::new(),
    }
    .unwrap_or_else(|e| {
        eprintln!("cannot start session: {e}");
        std::process::exit(2);
    });

    if args.is_empty() {
        repl(&mut session);
        return;
    }

    let mut failed = false;
    for path in &args {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
                continue;
            }
        };
        match session.run_pretty(&src) {
            Ok(out) => {
                for line in out {
                    println!("{line}");
                }
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn repl(session: &mut Session) {
    println!("MiniDBPL — Buneman & Atkinson, SIGMOD 1986 (:quit to exit, :schema for types)");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("dbpl> ");
        } else {
            print!("  ... ");
        }
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("{e}");
                break;
            }
        }
        let trimmed = line.trim();
        match trimmed {
            ":quit" | ":q" => break,
            ":schema" => {
                for (name, ty) in session.db.env().definitions() {
                    println!("type {name} = {ty}");
                }
                continue;
            }
            _ => {}
        }
        // A trailing backslash continues the statement on the next line.
        if let Some(stripped) = trimmed.strip_suffix('\\') {
            buffer.push_str(stripped);
            buffer.push('\n');
            continue;
        }
        buffer.push_str(&line);
        let src = std::mem::take(&mut buffer);
        if src.trim().is_empty() {
            continue;
        }
        match session.run_pretty(&src) {
            Ok(out) => {
                for l in out {
                    println!("{l}");
                }
            }
            Err(e) => println!("{e}"),
        }
    }
}
