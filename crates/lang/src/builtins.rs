//! Builtin functions: their static signatures and arities.
//!
//! The star is `get : forall t. Database -> List[t]` — the paper's
//! generic extraction function. (Its fully faithful type is
//! `∀t. Database → List[∃t' ≤ t]`; MiniDBPL applies the sound
//! "use-at-bound" rule, immediately opening every package at `t`, which is
//! what the existential licenses. The `dbpl-core` API exposes the packages
//! themselves.) `cons` is typed exactly as the paper's example
//! `∀a. a → List[a] → List[a]`.

use dbpl_types::Type;

/// The database's abstract type name.
pub const DATABASE: &str = "Database";

/// A builtin's static description.
pub struct BuiltinSig {
    /// Name (also the surface identifier).
    pub name: &'static str,
    /// Full (possibly quantified) type.
    pub ty: Type,
    /// Number of *value* arguments the implementation expects.
    pub arity: usize,
}

fn db() -> Type {
    Type::named(DATABASE)
}
fn v(s: &str) -> Type {
    Type::var(s)
}
fn list(t: Type) -> Type {
    Type::list(t)
}
fn fun2(a: Type, b: Type, r: Type) -> Type {
    Type::fun(a, Type::fun(b, r))
}

/// The table of builtins.
pub fn builtins() -> Vec<BuiltinSig> {
    vec![
        BuiltinSig {
            name: "print",
            ty: Type::fun(Type::Top, Type::Unit),
            arity: 1,
        },
        // Get : ∀t. Database → List[t]   (use-at-bound; see module docs)
        BuiltinSig {
            name: "get",
            ty: Type::forall("t", None, Type::fun(db(), list(v("t")))),
            arity: 1,
        },
        BuiltinSig {
            name: "put",
            ty: fun2(db(), Type::Dynamic, Type::Unit),
            arity: 2,
        },
        // Cons : ∀a. a → List[a] → List[a] — the paper's example.
        BuiltinSig {
            name: "cons",
            ty: Type::forall("a", None, fun2(v("a"), list(v("a")), list(v("a")))),
            arity: 2,
        },
        BuiltinSig {
            name: "head",
            ty: Type::forall("a", None, Type::fun(list(v("a")), v("a"))),
            arity: 1,
        },
        BuiltinSig {
            name: "tail",
            ty: Type::forall("a", None, Type::fun(list(v("a")), list(v("a")))),
            arity: 1,
        },
        BuiltinSig {
            name: "isEmpty",
            ty: Type::forall("a", None, Type::fun(list(v("a")), Type::Bool)),
            arity: 1,
        },
        BuiltinSig {
            name: "len",
            ty: Type::forall("a", None, Type::fun(list(v("a")), Type::Int)),
            arity: 1,
        },
        BuiltinSig {
            name: "append",
            ty: Type::forall("a", None, fun2(list(v("a")), list(v("a")), list(v("a")))),
            arity: 2,
        },
        BuiltinSig {
            name: "map",
            ty: Type::forall(
                "a",
                None,
                Type::forall(
                    "b",
                    None,
                    fun2(Type::fun(v("a"), v("b")), list(v("a")), list(v("b"))),
                ),
            ),
            arity: 2,
        },
        BuiltinSig {
            name: "filter",
            ty: Type::forall(
                "a",
                None,
                fun2(Type::fun(v("a"), Type::Bool), list(v("a")), list(v("a"))),
            ),
            arity: 2,
        },
        BuiltinSig {
            name: "fold",
            ty: Type::forall(
                "a",
                None,
                Type::forall(
                    "b",
                    None,
                    Type::fun(
                        fun2(v("b"), v("a"), v("b")),
                        fun2(v("b"), list(v("a")), v("b")),
                    ),
                ),
            ),
            arity: 3,
        },
        BuiltinSig {
            name: "sum",
            ty: Type::fun(list(Type::Float), Type::Float),
            arity: 1,
        },
        BuiltinSig {
            name: "str",
            ty: Type::fun(Type::Top, Type::Str),
            arity: 1,
        },
        BuiltinSig {
            name: "reverse",
            ty: Type::forall("a", None, Type::fun(list(v("a")), list(v("a")))),
            arity: 1,
        },
        // Set semantics at the language level: duplicates collapse.
        BuiltinSig {
            name: "distinct",
            ty: Type::forall("a", None, Type::fun(list(v("a")), list(v("a")))),
            arity: 1,
        },
        BuiltinSig {
            name: "range",
            ty: fun2(Type::Int, Type::Int, list(Type::Int)),
            arity: 2,
        },
        // Unconditional failure, modelling a buggy program that unwinds.
        // The session isolates the panic and aborts its transaction.
        BuiltinSig {
            name: "panic",
            ty: Type::fun(Type::Str, Type::Unit),
            arity: 1,
        },
        // Query-plan introspection: run Get at the bound and describe the
        // strategy that executed it plus the counters it moved.
        BuiltinSig {
            name: "explain",
            ty: Type::forall("t", None, Type::fun(db(), Type::Str)),
            arity: 1,
        },
        // The same for the generalized natural join of two object lists.
        BuiltinSig {
            name: "explainJoin",
            ty: Type::forall(
                "a",
                None,
                Type::forall("b", None, fun2(list(v("a")), list(v("b")), Type::Str)),
            ),
            arity: 2,
        },
        // EXPLAIN ANALYZE: actually execute Get under a dedicated trace
        // and render the measured plan tree — per-stage wall time, row
        // counts, strategy, cache hit ratio.
        BuiltinSig {
            name: "explainAnalyze",
            ty: Type::forall("t", None, Type::fun(db(), Type::Str)),
            arity: 1,
        },
        // SCRUB: walk every stored unit, verify checksums, read-repair
        // corrupt copies from the intrinsic replica, and render the
        // summary plus the measured scrub span tree.
        BuiltinSig {
            name: "scrub",
            ty: Type::fun(db(), Type::Str),
            arity: 1,
        },
        // TIMELINE: render the recent ring of the flight recorder (the
        // background sampler over the metrics registry), so an operator
        // session can ask "what just happened" without leaving MiniDBPL.
        BuiltinSig {
            name: "timeline",
            ty: Type::fun(db(), Type::Str),
            arity: 1,
        },
        // ANALYZE: full statistics-catalog rebuild over the healthy
        // store (the maintained catalog is replaced wholesale), and a
        // one-line summary of what the rebuild saw.
        BuiltinSig {
            name: "analyze",
            ty: Type::fun(db(), Type::Str),
            arity: 1,
        },
        // The maintained per-extent statistics catalog, rendered: rows,
        // ground-row density and per-path distinct sketches per carried
        // type — the planner inputs, inspectable from a session.
        BuiltinSig {
            name: "extentStats",
            ty: Type::fun(db(), Type::Str),
            arity: 1,
        },
        // The workload query log: recent per-query records and the
        // top-K heavy hitters by plan fingerprint.
        BuiltinSig {
            name: "workload",
            ty: Type::fun(db(), Type::Str),
            arity: 1,
        },
        // The same for the generalized natural join of two object lists.
        BuiltinSig {
            name: "explainAnalyzeJoin",
            ty: Type::forall(
                "a",
                None,
                Type::forall("b", None, fun2(list(v("a")), list(v("b")), Type::Str)),
            ),
            arity: 2,
        },
    ]
}

/// Look up one builtin by name.
pub fn builtin(name: &str) -> Option<BuiltinSig> {
    builtins().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_has_the_papers_shape() {
        let g = builtin("get").unwrap();
        assert_eq!(g.ty.to_string(), "forall t. Database -> List[t]");
    }

    #[test]
    fn cons_matches_cardelli_wegner() {
        let c = builtin("cons").unwrap();
        assert_eq!(c.ty.to_string(), "forall a. a -> List[a] -> List[a]");
    }

    #[test]
    fn table_has_no_duplicates() {
        let names: Vec<&str> = builtins().iter().map(|b| b.name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
        assert!(builtin("nope").is_none());
    }
}
