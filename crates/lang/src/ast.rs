//! The abstract syntax of MiniDBPL.

use dbpl_types::Type;

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (numeric)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `++` (string concatenation)
    Concat,
    /// `==`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
}

/// An expression, annotated with the byte offset of its head token.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Source offset (for error messages).
    pub at: usize,
    /// The node itself.
    pub node: ExprKind,
}

/// Expression constructors.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// Unit literal `()`.
    Unit,
    /// Variable reference.
    Var(String),
    /// Record literal `{l = e, ...}`.
    Record(Vec<(String, Expr)>),
    /// List literal `[e, ...]`.
    List(Vec<Expr>),
    /// Field access `e.l`.
    Field(Box<Expr>, String),
    /// Record extension `e with {l = e, ...}` — object-level inheritance.
    With(Box<Expr>, Vec<(String, Expr)>),
    /// Conditional.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `let x (: T)? = e1 in e2`.
    Let(String, Option<Type>, Box<Expr>, Box<Expr>),
    /// Lambda `fn(x: T) => e` (multi-parameter surface forms are curried
    /// by the parser).
    Lambda(String, Type, Box<Expr>),
    /// Application `f(e)` (multi-argument calls are curried).
    App(Box<Expr>, Box<Expr>),
    /// Type application `f[T]`.
    TyApp(Box<Expr>, Type),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `not e`.
    Not(Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// `dynamic e` — inject into `Dynamic`, carrying `e`'s static type.
    DynamicE(Box<Expr>),
    /// `coerce e to T` — checked projection out of `Dynamic`.
    CoerceE(Box<Expr>, Type),
    /// `typeof e` — the description (as a string) of a dynamic's carried
    /// type.
    TypeofE(Box<Expr>),
    /// `extern(handle, e)` — replicating persistence out.
    ExternE(Box<Expr>, Box<Expr>),
    /// `intern(handle)` — replicating persistence in; result `Dynamic`.
    InternE(Box<Expr>),
    /// `tag Label e` — variant construction; infers the singleton variant
    /// `<Label: T>`, a subtype of every wider variant carrying that arm.
    TagE(String, Box<Expr>),
    /// `case e of A x => e1 | B y => e2 …` — exhaustive variant analysis.
    CaseE(Box<Expr>, Vec<(String, String, Expr)>),
}

impl Expr {
    /// Construct with a position.
    pub fn new(at: usize, node: ExprKind) -> Expr {
        Expr { at, node }
    }
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `type Name = T`.
    TypeDecl {
        /// Offset.
        at: usize,
        /// Declared name.
        name: String,
        /// Definition.
        ty: Type,
    },
    /// `include Sub in Sup` — an Adaplex-style declared subtype edge.
    Include {
        /// Offset.
        at: usize,
        /// Subtype name.
        sub: String,
        /// Supertype name.
        sup: String,
    },
    /// `let x (: T)? = e` at top level.
    Let {
        /// Offset.
        at: usize,
        /// Bound name.
        name: String,
        /// Optional annotation.
        ann: Option<Type>,
        /// Bound expression.
        expr: Expr,
    },
    /// `fun f[t <= B, ...](x: T, ...): R = e` — sugar for a (possibly
    /// type-)polymorphic let.
    FunDecl {
        /// Offset.
        at: usize,
        /// Function name.
        name: String,
        /// Type parameters with optional bounds.
        tparams: Vec<(String, Option<Type>)>,
        /// Value parameters.
        params: Vec<(String, Type)>,
        /// Declared result type.
        result: Type,
        /// Body.
        body: Expr,
    },
    /// `begin` — open an explicit transaction; subsequent database,
    /// extent and store mutations are staged until `commit`.
    Begin {
        /// Offset.
        at: usize,
    },
    /// `commit` — durably apply the open explicit transaction, across
    /// every attached store, atomically.
    Commit {
        /// Offset.
        at: usize,
    },
    /// `abort` — discard every staged mutation of the open explicit
    /// transaction.
    Abort {
        /// Offset.
        at: usize,
    },
    /// A bare expression statement; its value is printed.
    Expr(Expr),
}

/// A parsed program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// The items, in order.
    pub items: Vec<Item>,
}
