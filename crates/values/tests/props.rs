//! Property tests for the information ordering: `⊑` is a partial order,
//! `⊔` is a least upper bound where defined, `⊓` a greatest lower bound,
//! and the antichain reductions are canonical.

use dbpl_values::{
    comparable, compatible, is_antichain, join, leq, meet, reduce_maximal, reduce_minimal, Value,
};
use proptest::prelude::*;

/// Record-heavy values without sets (sets have non-canonical
/// representatives, covered by targeted tests below) and without Dyn/Ref
/// (flat by definition).
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        (-3i64..3).prop_map(Value::Int),
        "[ab]{1,2}".prop_map(Value::str),
    ];
    leaf.prop_recursive(3, 32, 4, |inner| {
        prop_oneof![
            4 => prop::collection::btree_map("[xyz]", inner.clone(), 0..4).prop_map(Value::Record),
            1 => prop::collection::vec(inner.clone(), 0..3).prop_map(Value::List),
            1 => ("[AB]", inner).prop_map(|(l, v)| Value::tagged(l, v)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn leq_is_reflexive(a in arb_value()) {
        prop_assert!(leq(&a, &a));
    }

    #[test]
    fn leq_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        if leq(&a, &b) && leq(&b, &c) {
            prop_assert!(leq(&a, &c));
        }
    }

    #[test]
    fn leq_is_antisymmetric(a in arb_value(), b in arb_value()) {
        if leq(&a, &b) && leq(&b, &a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn join_is_lub(a in arb_value(), b in arb_value()) {
        if let Some(j) = join(&a, &b) {
            prop_assert!(leq(&a, &j));
            prop_assert!(leq(&b, &j));
        }
    }

    #[test]
    fn join_is_commutative_and_idempotent(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(join(&a, &b), join(&b, &a));
        prop_assert_eq!(join(&a, &a), Some(a.clone()));
    }

    #[test]
    fn join_is_least(a in arb_value(), b in arb_value(), u in arb_value()) {
        // Any common upper bound dominates the join.
        if leq(&a, &u) && leq(&b, &u) {
            let j = join(&a, &b);
            prop_assert!(j.is_some(), "common upper bound implies join exists");
            prop_assert!(leq(&j.unwrap(), &u));
        }
    }

    #[test]
    fn meet_is_glb(a in arb_value(), b in arb_value()) {
        if let Some(m) = meet(&a, &b) {
            prop_assert!(leq(&m, &a));
            prop_assert!(leq(&m, &b));
        }
    }

    #[test]
    fn meet_is_greatest(a in arb_value(), b in arb_value(), l in arb_value()) {
        if leq(&l, &a) && leq(&l, &b) {
            let m = meet(&a, &b);
            prop_assert!(m.is_some(), "common lower bound implies meet exists");
            prop_assert!(leq(&l, &m.unwrap()));
        }
    }

    #[test]
    fn meet_commutative_idempotent(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(meet(&a, &b), meet(&b, &a));
        prop_assert_eq!(meet(&a, &a), Some(a.clone()));
    }

    #[test]
    fn compatibility_is_symmetric(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(compatible(&a, &b), compatible(&b, &a));
    }

    #[test]
    fn comparable_implies_compatible(a in arb_value(), b in arb_value()) {
        if comparable(&a, &b) {
            prop_assert!(compatible(&a, &b));
        }
    }

    #[test]
    fn absorption(a in arb_value(), b in arb_value()) {
        // a ⊔ (a ⊓ b) = a when both sides are defined.
        if let Some(m) = meet(&a, &b) {
            prop_assert_eq!(join(&a, &m), Some(a.clone()));
        }
        if let Some(j) = join(&a, &b) {
            prop_assert_eq!(meet(&a, &j), Some(a.clone()));
        }
    }

    #[test]
    fn reductions_produce_antichains(vs in prop::collection::vec(arb_value(), 0..8)) {
        let maxi = reduce_maximal(vs.clone());
        let mini = reduce_minimal(vs.clone());
        prop_assert!(is_antichain(&maxi));
        prop_assert!(is_antichain(&mini));
        // Every input element is represented: dominated by some maximal
        // element, and dominating some minimal element.
        for v in &vs {
            prop_assert!(maxi.iter().any(|m| leq(v, m)));
            prop_assert!(mini.iter().any(|m| leq(m, v)));
        }
    }

    #[test]
    fn reduction_is_idempotent(vs in prop::collection::vec(arb_value(), 0..8)) {
        let once = reduce_maximal(vs);
        let mut twice = reduce_maximal(once.clone());
        let mut once_sorted = once.clone();
        once_sorted.sort();
        twice.sort();
        prop_assert_eq!(once_sorted, twice);
    }

    #[test]
    fn extend_moves_up(a in arb_value(), v in arb_value()) {
        if a.is_record() {
            let base = dbpl_values::without(&a, "w").unwrap();
            let e = dbpl_values::extend(&base, [("w", v)]).unwrap();
            prop_assert!(leq(&base, &e));
        }
    }
}
