//! Edge cases for the value layer: error paths, NaN handling, dangling
//! references, and conformance at the fringes.

use dbpl_types::{parse_type, Type, TypeEnv};
use dbpl_values::{
    coerce, conforms, make_dynamic, type_of, DynValue, Heap, Mode, Oid, Value, ValueError,
};

#[test]
fn dangling_refs_error_everywhere() {
    let env = TypeEnv::new();
    let heap = Heap::new();
    let dangling = Value::Ref(Oid(404));
    assert!(matches!(
        type_of(&dangling, &env, &heap),
        Err(ValueError::DanglingRef(_))
    ));
    assert!(
        conforms(&dangling, &Type::Top, &env, &heap, Mode::Strict).is_ok(),
        "Top asks nothing"
    );
    assert!(conforms(&dangling, &Type::Int, &env, &heap, Mode::Strict).is_err());
    // Replication of a value containing a dangling ref fails loudly.
    let mut dst = Heap::new();
    assert!(heap
        .replicate_into(&Value::record([("r", dangling)]), &mut dst)
        .is_err());
}

#[test]
fn nan_is_a_value_like_any_other() {
    let env = TypeEnv::new();
    let heap = Heap::new();
    let nan = Value::float(f64::NAN);
    assert_eq!(type_of(&nan, &env, &heap).unwrap(), Type::Float);
    assert!(conforms(&nan, &Type::Float, &env, &heap, Mode::Strict).is_ok());
    // Total order: NaN equals itself, so ⊑ and ⊔ behave.
    assert!(dbpl_values::leq(&nan, &nan));
    assert_eq!(dbpl_values::join(&nan, &nan), Some(nan.clone()));
    // And sets containing NaN deduplicate.
    let s = Value::set([nan.clone(), nan]);
    assert_eq!(s.as_set().unwrap().len(), 1);
}

#[test]
fn coerce_error_reports_both_types() {
    let env = TypeEnv::new();
    let d = DynValue::new(Type::Int, Value::Int(3));
    match coerce(&d, &Type::Str, &env) {
        Err(ValueError::CoerceFailed { carried, wanted }) => {
            assert_eq!(carried, Type::Int);
            assert_eq!(wanted, Type::Str);
        }
        other => panic!("expected CoerceFailed, got {other:?}"),
    }
}

#[test]
fn make_dynamic_respects_partiality_modes_indirectly() {
    // make_dynamic is strict: a partial record is rejected at a total type.
    let env = TypeEnv::new();
    let heap = Heap::new();
    let ty = parse_type("{Name: Str, Empno: Int}").unwrap();
    let partial = Value::record([("Name", Value::str("x"))]);
    assert!(make_dynamic(ty.clone(), partial.clone(), &env, &heap).is_err());
    // But conformance in Partial mode accepts it (the CPO view).
    assert!(conforms(&partial, &ty, &env, &heap, Mode::Partial).is_ok());
}

#[test]
fn set_conformance_uses_element_subtyping() {
    let env = TypeEnv::new();
    let heap = Heap::new();
    let employees = Value::set([Value::record([
        ("Name", Value::str("a")),
        ("Empno", Value::Int(1)),
    ])]);
    let person_set = parse_type("Set[{Name: Str}]").unwrap();
    assert!(conforms(&employees, &person_set, &env, &heap, Mode::Strict).is_ok());
    let int_set = parse_type("Set[Int]").unwrap();
    assert!(conforms(&employees, &int_set, &env, &heap, Mode::Strict).is_err());
}

#[test]
fn type_of_mixed_set_joins_elements() {
    let env = TypeEnv::new();
    let heap = Heap::new();
    let s = Value::set([
        Value::record([("Name", Value::str("a")), ("Empno", Value::Int(1))]),
        Value::record([("Name", Value::str("b")), ("Gpa", Value::float(3.0))]),
    ]);
    assert_eq!(
        type_of(&s, &env, &heap).unwrap(),
        parse_type("Set[{Name: Str}]").unwrap()
    );
}

#[test]
fn deep_dynamic_values_nest_and_reveal_one_layer_at_a_time() {
    let env = TypeEnv::new();
    let heap = Heap::new();
    // dynamic (dynamic 3): the outer carries Dynamic, the inner Int.
    let inner = Value::dynamic(Type::Int, Value::Int(3));
    let outer = Value::dynamic(Type::Dynamic, inner.clone());
    assert_eq!(type_of(&outer, &env, &heap).unwrap(), Type::Dynamic);
    let od = outer.as_dyn().unwrap();
    let once = coerce(od, &Type::Dynamic, &env).unwrap();
    assert_eq!(once, inner);
    let id = once.as_dyn().unwrap();
    assert_eq!(coerce(id, &Type::Int, &env).unwrap(), Value::Int(3));
}

#[test]
fn replication_of_disconnected_graphs_copies_only_the_reachable_part() {
    let mut src = Heap::new();
    let reachable = src.alloc(Type::Int, Value::Int(1));
    let _orphan = src.alloc(Type::Int, Value::Int(2));
    let mut dst = Heap::new();
    src.replicate_into(&Value::Ref(reachable), &mut dst)
        .unwrap();
    assert_eq!(dst.len(), 1, "orphan not copied");
}

#[test]
fn heap_update_preserves_declared_type() {
    let mut heap = Heap::new();
    let ty = parse_type("{Name: Str}").unwrap();
    let o = heap.alloc(ty.clone(), Value::record([("Name", Value::str("a"))]));
    heap.update(o, Value::record([("Name", Value::str("b"))]))
        .unwrap();
    assert_eq!(
        heap.get(o).unwrap().ty,
        ty,
        "identity keeps its declared type"
    );
}
