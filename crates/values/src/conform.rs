//! Conformance: does a value inhabit a type?
//!
//! Two modes matter to the paper:
//!
//! * [`Mode::Strict`] — ordinary static typing: a record must supply every
//!   field its type demands (it may supply more — subsumption).
//! * [`Mode::Partial`] — the object-level view: a record may *omit* fields,
//!   since a partial record is an approximation of a total one. This is the
//!   mode generalized relations and schema-enriched databases live in: the
//!   paper observes that the type `{Name: Str, Age: Int}` "can be seen as a
//!   very large relation", and a partial record denotes the set of its
//!   ⊒-refinements within that relation.
//!
//! `coerce` — the checked projection out of `Dynamic` — also lives here.

use crate::error::ValueError;
use crate::heap::Heap;
use crate::value::{DynValue, Value};
use dbpl_types::{is_subtype, Type, TypeEnv};

/// Conformance mode: must records be total?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Every field demanded by the type must be present.
    #[default]
    Strict,
    /// Fields may be missing (partial-record semantics).
    Partial,
}

/// Check that `v` conforms to `ty`.
pub fn conforms(
    v: &Value,
    ty: &Type,
    env: &TypeEnv,
    heap: &Heap,
    mode: Mode,
) -> Result<(), ValueError> {
    let fail = |reason: String| {
        Err(ValueError::Conform {
            value: clip(v),
            expected: ty.clone(),
            reason,
        })
    };
    let ty = env.head_normal(ty)?;
    match (v, ty) {
        (_, Type::Top) => Ok(()),
        (_, Type::Bottom) => fail("no value inhabits Bottom".into()),
        (Value::Unit, Type::Unit) => Ok(()),
        (Value::Bool(_), Type::Bool) => Ok(()),
        (Value::Int(_), Type::Int) => Ok(()),
        (Value::Int(_), Type::Float) => Ok(()), // numeric widening
        (Value::Float(_), Type::Float) => Ok(()),
        (Value::Str(_), Type::Str) => Ok(()),
        (Value::Dyn(_), Type::Dynamic) => Ok(()),
        (Value::List(xs), Type::List(elem)) => {
            for x in xs {
                conforms(x, elem, env, heap, mode)?;
            }
            Ok(())
        }
        (Value::Set(xs), Type::Set(elem)) => {
            for x in xs {
                conforms(x, elem, env, heap, mode)?;
            }
            Ok(())
        }
        (Value::Record(fs), Type::Record(want)) => {
            for (l, ft) in want {
                match fs.get(l) {
                    Some(fv) => conforms(fv, ft, env, heap, mode)?,
                    None if mode == Mode::Partial => {}
                    None => return fail(format!("missing field `{l}`")),
                }
            }
            // Extra fields are fine: width subsumption.
            Ok(())
        }
        (Value::Tagged(l, payload), Type::Variant(arms)) => match arms.get(l) {
            Some(at) => conforms(payload, at, env, heap, mode),
            None => fail(format!("variant has no arm `{l}`")),
        },
        (Value::Ref(oid), want) => {
            let obj = heap.get(*oid)?;
            if is_subtype(&obj.ty, want, env) {
                Ok(())
            } else {
                fail(format!("object {oid} has type {}, not a subtype", obj.ty))
            }
        }
        // The Get result type: a value conforms to ∃t ≤ B. t iff it
        // conforms to the bound B.
        (_, Type::Exists(q)) => {
            if *q.body == Type::Var(q.var.clone()) {
                let bound = q.bound.as_deref().unwrap_or(&Type::Top);
                conforms(v, bound, env, heap, mode)
            } else {
                fail("cannot check conformance to a general existential".into())
            }
        }
        _ => fail("shape mismatch".into()),
    }
}

/// Checked construction of a dynamic value: `dynamic v : T` verifies
/// `v : T` first (strict mode).
pub fn make_dynamic(
    ty: Type,
    value: Value,
    env: &TypeEnv,
    heap: &Heap,
) -> Result<Value, ValueError> {
    conforms(&value, &ty, env, heap, Mode::Strict)?;
    Ok(Value::dynamic(ty, value))
}

/// `coerce d to T`: succeed iff the carried type is a subtype of `T`
/// (so a dynamic `Employee` coerces to `Person`), otherwise raise the
/// paper's run-time exception.
pub fn coerce(d: &DynValue, want: &Type, env: &TypeEnv) -> Result<Value, ValueError> {
    if is_subtype(&d.ty, want, env) {
        Ok(d.value.clone())
    } else {
        Err(ValueError::CoerceFailed {
            carried: d.ty.clone(),
            wanted: want.clone(),
        })
    }
}

fn clip(v: &Value) -> String {
    let s = v.to_string();
    if s.len() > 120 {
        format!("{}…", &s[..120])
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpl_types::parse_type;

    fn ctx() -> (TypeEnv, Heap) {
        let mut env = TypeEnv::new();
        env.declare("Person", parse_type("{Name: Str}").unwrap())
            .unwrap();
        env.declare("Employee", parse_type("{Name: Str, Empno: Int}").unwrap())
            .unwrap();
        (env, Heap::new())
    }

    #[test]
    fn strict_requires_all_fields() {
        let (env, heap) = ctx();
        let full = Value::record([("Name", Value::str("a")), ("Empno", Value::Int(1))]);
        let partial = Value::record([("Empno", Value::Int(1))]);
        let t = Type::named("Employee");
        assert!(conforms(&full, &t, &env, &heap, Mode::Strict).is_ok());
        assert!(conforms(&partial, &t, &env, &heap, Mode::Strict).is_err());
        assert!(conforms(&partial, &t, &env, &heap, Mode::Partial).is_ok());
    }

    #[test]
    fn extra_fields_are_subsumption() {
        let (env, heap) = ctx();
        let emp = Value::record([("Name", Value::str("a")), ("Empno", Value::Int(1))]);
        assert!(conforms(&emp, &Type::named("Person"), &env, &heap, Mode::Strict).is_ok());
    }

    #[test]
    fn wrong_field_type_rejected() {
        let (env, heap) = ctx();
        let v = Value::record([("Name", Value::Int(3))]);
        assert!(conforms(&v, &Type::named("Person"), &env, &heap, Mode::Strict).is_err());
    }

    #[test]
    fn int_widens_to_float_in_values() {
        let (env, heap) = ctx();
        assert!(conforms(&Value::Int(1), &Type::Float, &env, &heap, Mode::Strict).is_ok());
        assert!(conforms(&Value::float(1.0), &Type::Int, &env, &heap, Mode::Strict).is_err());
    }

    #[test]
    fn paper_coerce_example() {
        // let d = dynamic 3; coerce d to Int succeeds; coerce d to String
        // raises a run-time exception.
        let (env, heap) = ctx();
        let d = make_dynamic(Type::Int, Value::Int(3), &env, &heap).unwrap();
        let dv = d.as_dyn().unwrap();
        assert_eq!(coerce(dv, &Type::Int, &env).unwrap(), Value::Int(3));
        assert!(matches!(
            coerce(dv, &Type::Str, &env),
            Err(ValueError::CoerceFailed { .. })
        ));
    }

    #[test]
    fn coerce_respects_subtyping() {
        let (env, heap) = ctx();
        let emp = Value::record([("Name", Value::str("a")), ("Empno", Value::Int(1))]);
        let d = make_dynamic(Type::named("Employee"), emp.clone(), &env, &heap).unwrap();
        let dv = d.as_dyn().unwrap();
        // A dynamic Employee can be coerced to Person...
        assert_eq!(coerce(dv, &Type::named("Person"), &env).unwrap(), emp);
        // ...but a dynamic Person could not be coerced to Employee.
        let p = make_dynamic(
            Type::named("Person"),
            Value::record([("Name", Value::str("b"))]),
            &env,
            &heap,
        )
        .unwrap();
        assert!(coerce(p.as_dyn().unwrap(), &Type::named("Employee"), &env).is_err());
    }

    #[test]
    fn make_dynamic_is_checked() {
        let (env, heap) = ctx();
        assert!(make_dynamic(Type::Str, Value::Int(1), &env, &heap).is_err());
    }

    #[test]
    fn refs_conform_by_declared_type() {
        let (env, mut heap) = ctx();
        let o = heap.alloc(
            Type::named("Employee"),
            Value::record([("Name", Value::str("a")), ("Empno", Value::Int(1))]),
        );
        assert!(conforms(
            &Value::Ref(o),
            &Type::named("Person"),
            &env,
            &heap,
            Mode::Strict
        )
        .is_ok());
        assert!(conforms(&Value::Ref(o), &Type::Int, &env, &heap, Mode::Strict).is_err());
    }

    #[test]
    fn existential_package_conformance() {
        let (env, heap) = ctx();
        let emp = Value::record([("Name", Value::str("a")), ("Empno", Value::Int(1))]);
        let ex = Type::exists("t", Some(Type::named("Person")), Type::var("t"));
        assert!(conforms(&emp, &ex, &env, &heap, Mode::Strict).is_ok());
        assert!(conforms(&Value::Int(1), &ex, &env, &heap, Mode::Strict).is_err());
    }

    #[test]
    fn variant_conformance() {
        let (env, heap) = ctx();
        let t = parse_type("<Nil: Unit | Cons: Int>").unwrap();
        assert!(conforms(
            &Value::tagged("Nil", Value::Unit),
            &t,
            &env,
            &heap,
            Mode::Strict
        )
        .is_ok());
        assert!(conforms(
            &Value::tagged("Oops", Value::Unit),
            &t,
            &env,
            &heap,
            Mode::Strict
        )
        .is_err());
    }

    #[test]
    fn list_and_set_conformance() {
        let (env, heap) = ctx();
        let t = Type::list(Type::Int);
        assert!(conforms(&Value::list([Value::Int(1)]), &t, &env, &heap, Mode::Strict).is_ok());
        assert!(conforms(
            &Value::list([Value::str("x")]),
            &t,
            &env,
            &heap,
            Mode::Strict
        )
        .is_err());
        assert!(conforms(&Value::list([]), &t, &env, &heap, Mode::Strict).is_ok());
        let s = Type::set(Type::Str);
        assert!(conforms(
            &Value::set([Value::str("a")]),
            &s,
            &env,
            &heap,
            Mode::Strict
        )
        .is_ok());
    }
}
