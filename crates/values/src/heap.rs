//! The object heap: object identity and sharing.
//!
//! The paper's object-oriented side requires values with *identity*
//! independent of their intrinsic properties (two identical cars in the
//! parking lot). A [`Heap`] owns objects addressed by [`Oid`]s; `Value::Ref`
//! values point into it, giving genuine sharing — the substrate on which
//! the replicating-persistence update anomaly (and intrinsic persistence's
//! avoidance of it) is demonstrated.

use crate::error::ValueError;
use crate::value::{Oid, Value};
use dbpl_types::Type;
use std::collections::{BTreeMap, BTreeSet};

/// A stored object: its declared type and current value.
#[derive(Debug, Clone, PartialEq)]
pub struct HeapObject {
    /// Declared type of the object (persists with it — principle 2).
    pub ty: Type,
    /// Current value.
    pub value: Value,
}

/// An object heap mapping [`Oid`]s to typed objects.
#[derive(Debug, Clone, Default)]
pub struct Heap {
    objects: BTreeMap<Oid, HeapObject>,
    next: u64,
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh object, returning its identity.
    pub fn alloc(&mut self, ty: Type, value: Value) -> Oid {
        let oid = Oid(self.next);
        self.next += 1;
        self.objects.insert(oid, HeapObject { ty, value });
        oid
    }

    /// Allocate with a specific `Oid` (used when reloading a persistent
    /// image). Advances the allocator past it.
    pub fn insert_at(&mut self, oid: Oid, ty: Type, value: Value) {
        self.next = self.next.max(oid.0 + 1);
        self.objects.insert(oid, HeapObject { ty, value });
    }

    /// Fetch an object.
    pub fn get(&self, oid: Oid) -> Result<&HeapObject, ValueError> {
        self.objects.get(&oid).ok_or(ValueError::DanglingRef(oid))
    }

    /// Fetch an object mutably.
    pub fn get_mut(&mut self, oid: Oid) -> Result<&mut HeapObject, ValueError> {
        self.objects
            .get_mut(&oid)
            .ok_or(ValueError::DanglingRef(oid))
    }

    /// Overwrite the value of an existing object (identity is preserved —
    /// this is what makes an update visible through *every* reference).
    pub fn update(&mut self, oid: Oid, value: Value) -> Result<(), ValueError> {
        self.get_mut(oid)?.value = value;
        Ok(())
    }

    /// Remove a single object, returning it if present. (Bulk reclamation
    /// should go through [`Heap::sweep`]; this exists for log replay of
    /// recorded deletions.)
    pub fn remove(&mut self, oid: Oid) -> Option<HeapObject> {
        self.objects.remove(&oid)
    }

    /// Does the heap contain this object?
    pub fn contains(&self, oid: Oid) -> bool {
        self.objects.contains_key(&oid)
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Is the heap empty?
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The identity the next [`Heap::alloc`] would hand out — a watermark
    /// separating pre-existing objects from ones allocated after this
    /// point (how an MVCC frame finds the objects a program created).
    pub fn next_oid(&self) -> Oid {
        Oid(self.next)
    }

    /// Iterate over all objects.
    pub fn iter(&self) -> impl Iterator<Item = (Oid, &HeapObject)> {
        self.objects.iter().map(|(o, h)| (*o, h))
    }

    /// The set of objects reachable from `roots` by following `Ref`s —
    /// the trace used by intrinsic persistence ("there is no need
    /// physically to retain storage for values for which all reference is
    /// lost").
    pub fn reachable(&self, roots: impl IntoIterator<Item = Oid>) -> BTreeSet<Oid> {
        let mut seen = BTreeSet::new();
        let mut stack: Vec<Oid> = roots.into_iter().collect();
        while let Some(o) = stack.pop() {
            if !seen.insert(o) {
                continue;
            }
            if let Some(obj) = self.objects.get(&o) {
                stack.extend(obj.value.direct_refs());
            }
        }
        seen
    }

    /// Drop every object *not* reachable from `roots`; returns the
    /// collected identities. This is the sweep of intrinsic persistence.
    pub fn sweep(&mut self, roots: impl IntoIterator<Item = Oid>) -> Vec<Oid> {
        let live = self.reachable(roots);
        let dead: Vec<Oid> = self
            .objects
            .keys()
            .copied()
            .filter(|o| !live.contains(o))
            .collect();
        for o in &dead {
            self.objects.remove(o);
        }
        dead
    }

    /// Deep-copy the object graph reachable from `value` out of this heap
    /// into `target`, remapping references; returns the rewritten value.
    ///
    /// This is exactly the *replication* of replicating persistence: "when
    /// a dynamic value is externed, it carries with it everything that is
    /// reachable from that value". Copies lose sharing with the source —
    /// deliberately, since that loss is the paper's update anomaly.
    pub fn replicate_into(&self, value: &Value, target: &mut Heap) -> Result<Value, ValueError> {
        let mut remap: BTreeMap<Oid, Oid> = BTreeMap::new();
        // First pass: allocate blanks for every reachable object so cycles
        // remap correctly.
        let roots = value.direct_refs();
        let reachable = self.reachable(roots);
        for o in &reachable {
            let obj = self.get(*o)?;
            let new = target.alloc(obj.ty.clone(), Value::Unit);
            remap.insert(*o, new);
        }
        // Second pass: rewrite and install values.
        for o in &reachable {
            let obj = self.get(*o)?;
            let rewritten = rewrite_refs(&obj.value, &remap)?;
            target.update(remap[o], rewritten)?;
        }
        rewrite_refs(value, &remap)
    }
}

/// Rewrite every `Ref` in `value` through `remap`.
fn rewrite_refs(value: &Value, remap: &BTreeMap<Oid, Oid>) -> Result<Value, ValueError> {
    Ok(match value {
        Value::Ref(o) => Value::Ref(*remap.get(o).ok_or(ValueError::DanglingRef(*o))?),
        Value::List(xs) => Value::List(
            xs.iter()
                .map(|v| rewrite_refs(v, remap))
                .collect::<Result<_, _>>()?,
        ),
        Value::Set(xs) => Value::Set(
            xs.iter()
                .map(|v| rewrite_refs(v, remap))
                .collect::<Result<_, _>>()?,
        ),
        Value::Record(fs) => Value::Record(
            fs.iter()
                .map(|(l, v)| Ok((l.clone(), rewrite_refs(v, remap)?)))
                .collect::<Result<_, ValueError>>()?,
        ),
        Value::Tagged(l, v) => Value::Tagged(l.clone(), Box::new(rewrite_refs(v, remap)?)),
        Value::Dyn(d) => Value::dynamic(d.ty.clone(), rewrite_refs(&d.value, remap)?),
        other => other.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_update() {
        let mut h = Heap::new();
        let o = h.alloc(Type::Int, Value::Int(1));
        assert_eq!(h.get(o).unwrap().value, Value::Int(1));
        h.update(o, Value::Int(2)).unwrap();
        assert_eq!(h.get(o).unwrap().value, Value::Int(2));
        assert!(h.get(Oid(99)).is_err());
    }

    #[test]
    fn identity_distinct_from_structure() {
        let mut h = Heap::new();
        let car = Value::record([("Make", Value::str("Chevvy Nova"))]);
        let a = h.alloc(Type::named("Car"), car.clone());
        let b = h.alloc(Type::named("Car"), car);
        assert_ne!(a, b, "two identical cars are two objects");
    }

    #[test]
    fn reachability_follows_nested_refs() {
        let mut h = Heap::new();
        let c = h.alloc(Type::Int, Value::Int(0));
        let b = h.alloc(Type::Top, Value::record([("next", Value::Ref(c))]));
        let a = h.alloc(Type::Top, Value::list([Value::Ref(b)]));
        let orphan = h.alloc(Type::Int, Value::Int(9));
        let live = h.reachable([a]);
        assert!(live.contains(&a) && live.contains(&b) && live.contains(&c));
        assert!(!live.contains(&orphan));
    }

    #[test]
    fn reachability_handles_cycles() {
        let mut h = Heap::new();
        let a = h.alloc(Type::Top, Value::Unit);
        let b = h.alloc(Type::Top, Value::record([("peer", Value::Ref(a))]));
        h.update(a, Value::record([("peer", Value::Ref(b))]))
            .unwrap();
        let live = h.reachable([a]);
        assert_eq!(live, BTreeSet::from([a, b]));
    }

    #[test]
    fn sweep_collects_unreachable() {
        let mut h = Heap::new();
        let a = h.alloc(Type::Int, Value::Int(1));
        let dead = h.alloc(Type::Int, Value::Int(2));
        let collected = h.sweep([a]);
        assert_eq!(collected, vec![dead]);
        assert!(h.contains(a));
        assert!(!h.contains(dead));
    }

    #[test]
    fn replicate_preserves_structure_but_not_identity() {
        let mut src = Heap::new();
        let shared = src.alloc(Type::Int, Value::Int(42));
        let root = Value::record([("x", Value::Ref(shared)), ("y", Value::Ref(shared))]);

        let mut dst = Heap::new();
        let copied = src.replicate_into(&root, &mut dst).unwrap();

        // Structure: both fields still point at an object holding 42...
        let fx = copied.field("x").unwrap().as_ref_oid().unwrap();
        let fy = copied.field("y").unwrap().as_ref_oid().unwrap();
        assert_eq!(dst.get(fx).unwrap().value, Value::Int(42));
        // ...and internal sharing within one replication is preserved,
        assert_eq!(fx, fy);
        // but the copy has its own identity: updating the source object is
        // invisible through the copy (the germ of the update anomaly).
        src.update(shared, Value::Int(0)).unwrap();
        assert_eq!(dst.get(fx).unwrap().value, Value::Int(42));
    }

    #[test]
    fn replicate_within_one_heap_gets_fresh_identities() {
        let mut h = Heap::new();
        let shared = h.alloc(Type::Int, Value::Int(7));
        let root = Value::record([("p", Value::Ref(shared))]);
        let copied = {
            let src = h.clone();
            src.replicate_into(&root, &mut h).unwrap()
        };
        let new = copied.field("p").unwrap().as_ref_oid().unwrap();
        assert_ne!(new, shared, "replication allocates a distinct object");
        assert_eq!(h.get(new).unwrap().value, Value::Int(7));
    }

    #[test]
    fn replicate_handles_cycles() {
        let mut src = Heap::new();
        let a = src.alloc(Type::Top, Value::Unit);
        let b = src.alloc(Type::Top, Value::record([("peer", Value::Ref(a))]));
        src.update(a, Value::record([("peer", Value::Ref(b))]))
            .unwrap();
        let mut dst = Heap::new();
        let v = src.replicate_into(&Value::Ref(a), &mut dst).unwrap();
        let na = v.as_ref_oid().unwrap();
        let nb = dst
            .get(na)
            .unwrap()
            .value
            .field("peer")
            .unwrap()
            .as_ref_oid()
            .unwrap();
        let back = dst
            .get(nb)
            .unwrap()
            .value
            .field("peer")
            .unwrap()
            .as_ref_oid()
            .unwrap();
        assert_eq!(back, na, "cycle reconstructed in the copy");
    }

    #[test]
    fn insert_at_advances_allocator() {
        let mut h = Heap::new();
        h.insert_at(Oid(10), Type::Int, Value::Int(1));
        let fresh = h.alloc(Type::Int, Value::Int(2));
        assert!(fresh.0 > 10);
    }
}
