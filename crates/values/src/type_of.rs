//! `typeOf`: computing the type description of a value.
//!
//! Amber "provides a special type `Type` whose values describe types, and a
//! special function `typeOf` that takes any dynamic value and returns a
//! description (another value) of its type". Here the description *is* a
//! [`Type`], computed structurally: the principal (most specific) type of
//! the value.

use crate::error::ValueError;
use crate::heap::Heap;
use crate::value::Value;
use dbpl_types::{join, Type, TypeEnv};

/// The principal structural type of a value.
///
/// * records type as records of their fields' principal types;
/// * list/set element types are the [`join`] of the members' types (an
///   empty list is `List[Bottom]`);
/// * a `Dyn` value types as `Dynamic` (its carried type is only revealed by
///   `coerce`, as in the paper);
/// * a `Ref` types as the *declared* type of the heap object it points to.
pub fn type_of(v: &Value, env: &TypeEnv, heap: &Heap) -> Result<Type, ValueError> {
    Ok(match v {
        Value::Unit => Type::Unit,
        Value::Bool(_) => Type::Bool,
        Value::Int(_) => Type::Int,
        Value::Float(_) => Type::Float,
        Value::Str(_) => Type::Str,
        Value::List(xs) => {
            let mut elem = Type::Bottom;
            for x in xs {
                let t = type_of(x, env, heap)?;
                elem = join(&elem, &t, env);
            }
            Type::list(elem)
        }
        Value::Set(xs) => {
            let mut elem = Type::Bottom;
            for x in xs {
                let t = type_of(x, env, heap)?;
                elem = join(&elem, &t, env);
            }
            Type::set(elem)
        }
        Value::Record(fs) => {
            let mut fields = dbpl_types::Fields::new();
            for (l, x) in fs {
                fields.insert(l.clone(), type_of(x, env, heap)?);
            }
            Type::Record(fields)
        }
        Value::Tagged(l, x) => Type::variant([(l.clone(), type_of(x, env, heap)?)]),
        Value::Dyn(_) => Type::Dynamic,
        Value::Ref(oid) => heap.get(*oid)?.ty.clone(),
    })
}

/// The type *carried* by a dynamic value (the paper's `typeOf d`), or the
/// principal type for non-dynamic values.
pub fn carried_type(v: &Value, env: &TypeEnv, heap: &Heap) -> Result<Type, ValueError> {
    match v {
        Value::Dyn(d) => Ok(d.ty.clone()),
        other => type_of(other, env, heap),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_types() {
        let env = TypeEnv::new();
        let heap = Heap::new();
        assert_eq!(type_of(&Value::Int(1), &env, &heap).unwrap(), Type::Int);
        assert_eq!(type_of(&Value::str("x"), &env, &heap).unwrap(), Type::Str);
        assert_eq!(type_of(&Value::Unit, &env, &heap).unwrap(), Type::Unit);
    }

    #[test]
    fn record_types_are_principal() {
        let env = TypeEnv::new();
        let heap = Heap::new();
        let v = Value::record([("Name", Value::str("a")), ("Age", Value::Int(3))]);
        assert_eq!(
            type_of(&v, &env, &heap).unwrap(),
            Type::record([("Name", Type::Str), ("Age", Type::Int)])
        );
    }

    #[test]
    fn heterogeneous_list_joins_elements() {
        let env = TypeEnv::new();
        let heap = Heap::new();
        // Employee-ish and Student-ish records join to Person-ish.
        let v = Value::list([
            Value::record([("Name", Value::str("a")), ("Empno", Value::Int(1))]),
            Value::record([("Name", Value::str("b")), ("Gpa", Value::float(3.5))]),
        ]);
        assert_eq!(
            type_of(&v, &env, &heap).unwrap(),
            Type::list(Type::record([("Name", Type::Str)]))
        );
    }

    #[test]
    fn empty_list_is_list_bottom() {
        let env = TypeEnv::new();
        let heap = Heap::new();
        assert_eq!(
            type_of(&Value::list([]), &env, &heap).unwrap(),
            Type::list(Type::Bottom)
        );
    }

    #[test]
    fn int_and_float_join_to_float() {
        let env = TypeEnv::new();
        let heap = Heap::new();
        let v = Value::list([Value::Int(1), Value::float(2.5)]);
        assert_eq!(type_of(&v, &env, &heap).unwrap(), Type::list(Type::Float));
    }

    #[test]
    fn dynamic_hides_carried_type() {
        let env = TypeEnv::new();
        let heap = Heap::new();
        let d = Value::dynamic(Type::Int, Value::Int(3));
        assert_eq!(type_of(&d, &env, &heap).unwrap(), Type::Dynamic);
        assert_eq!(carried_type(&d, &env, &heap).unwrap(), Type::Int);
    }

    #[test]
    fn refs_use_declared_heap_type() {
        let env = TypeEnv::new();
        let mut heap = Heap::new();
        let o = heap.alloc(
            Type::named("Person"),
            Value::record([("Name", Value::str("d"))]),
        );
        assert_eq!(
            type_of(&Value::Ref(o), &env, &heap).unwrap(),
            Type::named("Person")
        );
        assert!(type_of(&Value::Ref(crate::value::Oid(404)), &env, &heap).is_err());
    }

    #[test]
    fn tagged_values_type_as_singleton_variants() {
        let env = TypeEnv::new();
        let heap = Heap::new();
        let v = Value::tagged("Cons", Value::Int(1));
        assert_eq!(
            type_of(&v, &env, &heap).unwrap(),
            Type::variant([("Cons", Type::Int)])
        );
    }
}
