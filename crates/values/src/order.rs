//! The information ordering `⊑` on objects, with its partial join `⊔`
//! and meet `⊓`.
//!
//! This is the paper's object-level inheritance: `o ⊑ o'` means "`o'`
//! contains more information than `o`". A record is made *better defined*
//! "either by adding new fields or by better defining one of the existing
//! fields":
//!
//! ```text
//! {Name='J Doe', Address={City='Austin'}}
//!   ⊑ {Name='J Doe', Address={City='Austin'}, Emp_no=1234}
//!   ⊑ {Name='J Doe', Address={City='Austin', Zip=78759}, Emp_no=1234}
//! ```
//!
//! The join `⊔` "effectively merges the information in two records"; it is
//! partial — `{Name='J Doe'} ⊔ {Name='K Smith'}` does not exist "since
//! there is no value we can put in the Name field that is better than
//! both". Base values are ordered flatly (comparable only when equal);
//! sets are ordered by the Hoare (lower) powerdomain ordering; variants are
//! comparable only under the same tag; references only at the same object
//! identity. The result is a complete partial order on finite values, after
//! Aït-Kaci and Bancilhon–Khoshafian.

use crate::value::Value;
use std::collections::BTreeSet;

/// Does `a ⊑ b` hold — is `b` at least as informative as `a`?
pub fn leq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Record(fa), Value::Record(fb)) => fa
            .iter()
            .all(|(l, va)| fb.get(l).is_some_and(|vb| leq(va, vb))),
        (Value::Tagged(la, va), Value::Tagged(lb, vb)) => la == lb && leq(va, vb),
        (Value::List(xa), Value::List(xb)) => {
            xa.len() == xb.len() && xa.iter().zip(xb).all(|(x, y)| leq(x, y))
        }
        // Hoare ordering: every element of `a` is dominated by an element
        // of `b`.
        (Value::Set(xa), Value::Set(xb)) => xa.iter().all(|x| xb.iter().any(|y| leq(x, y))),
        (Value::Dyn(da), Value::Dyn(db)) => da.ty == db.ty && leq(&da.value, &db.value),
        // Base values, references: flat.
        _ => a == b,
    }
}

/// Are the two values `⊑`-comparable (in either direction)?
pub fn comparable(a: &Value, b: &Value) -> bool {
    leq(a, b) || leq(b, a)
}

/// The join `a ⊔ b`: the least value containing the information of both,
/// or `None` when the two disagree (e.g. on a base field).
pub fn join(a: &Value, b: &Value) -> Option<Value> {
    match (a, b) {
        (Value::Record(fa), Value::Record(fb)) => {
            let mut out = fa.clone();
            for (l, vb) in fb {
                match out.get(l) {
                    Some(va) => {
                        let j = join(va, vb)?;
                        out.insert(l.clone(), j);
                    }
                    None => {
                        out.insert(l.clone(), vb.clone());
                    }
                }
            }
            Some(Value::Record(out))
        }
        (Value::Tagged(la, va), Value::Tagged(lb, vb)) => {
            if la == lb {
                Some(Value::Tagged(la.clone(), Box::new(join(va, vb)?)))
            } else {
                None
            }
        }
        (Value::List(xa), Value::List(xb)) => {
            if xa.len() != xb.len() {
                return None;
            }
            let items: Option<Vec<Value>> = xa.iter().zip(xb).map(|(x, y)| join(x, y)).collect();
            Some(Value::List(items?))
        }
        // Hoare join: union, canonicalized by dropping dominated elements.
        (Value::Set(xa), Value::Set(xb)) => {
            let union: Vec<Value> = xa.iter().chain(xb.iter()).cloned().collect();
            Some(Value::Set(reduce_maximal(union).into_iter().collect()))
        }
        (Value::Dyn(da), Value::Dyn(db)) => {
            if da.ty == db.ty {
                Some(Value::dynamic(da.ty.clone(), join(&da.value, &db.value)?))
            } else {
                None
            }
        }
        _ => {
            if a == b {
                Some(a.clone())
            } else {
                None
            }
        }
    }
}

/// The meet `a ⊓ b`: the common information of the two values. `None`
/// denotes ⊥ — no information in common at all. For records the meet
/// always exists (possibly the empty record).
pub fn meet(a: &Value, b: &Value) -> Option<Value> {
    match (a, b) {
        (Value::Record(fa), Value::Record(fb)) => {
            let mut out = crate::value::RecordFields::new();
            for (l, va) in fa {
                if let Some(vb) = fb.get(l) {
                    if let Some(m) = meet(va, vb) {
                        out.insert(l.clone(), m);
                    }
                }
            }
            Some(Value::Record(out))
        }
        (Value::Tagged(la, va), Value::Tagged(lb, vb)) => {
            if la == lb {
                meet(va, vb).map(|m| Value::Tagged(la.clone(), Box::new(m)))
            } else {
                None
            }
        }
        (Value::List(xa), Value::List(xb)) => {
            if xa.len() != xb.len() {
                return None;
            }
            let items: Option<Vec<Value>> = xa.iter().zip(xb).map(|(x, y)| meet(x, y)).collect();
            items.map(Value::List)
        }
        (Value::Set(xa), Value::Set(xb)) => {
            // Pairwise meets, canonicalized; ⊥ elements are dropped.
            let meets: Vec<Value> = xa
                .iter()
                .flat_map(|x| xb.iter().filter_map(move |y| meet(x, y)))
                .collect();
            Some(Value::Set(reduce_maximal(meets).into_iter().collect()))
        }
        (Value::Dyn(da), Value::Dyn(db)) => {
            if da.ty == db.ty {
                meet(&da.value, &db.value).map(|m| Value::dynamic(da.ty.clone(), m))
            } else {
                None
            }
        }
        _ => {
            if a == b {
                Some(a.clone())
            } else {
                None
            }
        }
    }
}

/// Do the two values have a join — can their information be merged?
pub fn compatible(a: &Value, b: &Value) -> bool {
    join(a, b).is_some()
}

/// Reduce a collection of values to its **maximal** elements: drop any
/// value dominated by another (the paper's subsumption rule for admitting
/// objects into a relation). Duplicates collapse.
pub fn reduce_maximal(items: Vec<Value>) -> Vec<Value> {
    let distinct: BTreeSet<Value> = items.into_iter().collect();
    let items: Vec<Value> = distinct.into_iter().collect();
    let mut keep = Vec::new();
    'outer: for (i, x) in items.iter().enumerate() {
        for (j, y) in items.iter().enumerate() {
            if i != j && leq(x, y) && (!leq(y, x) || j < i) {
                // x is strictly dominated, or equal with an earlier witness.
                continue 'outer;
            }
        }
        keep.push(x.clone());
    }
    keep
}

/// Reduce a collection of values to its **minimal** elements (the dual
/// canonical form, used by the alternative relation ordering).
pub fn reduce_minimal(items: Vec<Value>) -> Vec<Value> {
    let distinct: BTreeSet<Value> = items.into_iter().collect();
    let items: Vec<Value> = distinct.into_iter().collect();
    let mut keep = Vec::new();
    'outer: for (i, x) in items.iter().enumerate() {
        for (j, y) in items.iter().enumerate() {
            if i != j && leq(y, x) && (!leq(x, y) || j < i) {
                continue 'outer;
            }
        }
        keep.push(x.clone());
    }
    keep
}

/// Is the collection an antichain (a *cochain* in the paper's lattice
/// jargon): no two distinct elements comparable?
pub fn is_antichain(items: &[Value]) -> bool {
    for (i, x) in items.iter().enumerate() {
        for y in &items[i + 1..] {
            if comparable(x, y) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn o1() -> Value {
        Value::record([
            ("Name", Value::str("J Doe")),
            ("Address", Value::record([("City", Value::str("Austin"))])),
        ])
    }
    fn o2() -> Value {
        Value::record([
            ("Name", Value::str("J Doe")),
            ("Address", Value::record([("City", Value::str("Austin"))])),
            ("Emp_no", Value::Int(1234)),
        ])
    }
    fn o3() -> Value {
        Value::record([
            ("Name", Value::str("J Doe")),
            (
                "Address",
                Value::record([("City", Value::str("Austin")), ("Zip", Value::Int(78759))]),
            ),
        ])
    }

    #[test]
    fn paper_examples_of_ordering() {
        // o1 ⊑ o2 and o1 ⊑ o3, exactly as in the paper.
        assert!(leq(&o1(), &o2()));
        assert!(leq(&o1(), &o3()));
        assert!(!leq(&o2(), &o1()));
        assert!(!comparable(&o2(), &o3()));
    }

    #[test]
    fn paper_example_of_join() {
        // {Name='J Doe'} ⊔ {Emp_no=1234} = {Name='J Doe', Emp_no=1234}
        let a = Value::record([("Name", Value::str("J Doe"))]);
        let b = Value::record([("Emp_no", Value::Int(1234))]);
        assert_eq!(
            join(&a, &b),
            Some(Value::record([
                ("Name", Value::str("J Doe")),
                ("Emp_no", Value::Int(1234))
            ]))
        );
        // o2 ⊔ o3 from the paper.
        let expected = Value::record([
            ("Name", Value::str("J Doe")),
            (
                "Address",
                Value::record([("City", Value::str("Austin")), ("Zip", Value::Int(78759))]),
            ),
            ("Emp_no", Value::Int(1234)),
        ]);
        assert_eq!(join(&o2(), &o3()), Some(expected));
    }

    #[test]
    fn join_fails_on_disagreement() {
        // "we cannot join o1 with {Name = 'K Smith'}"
        let k = Value::record([("Name", Value::str("K Smith"))]);
        assert_eq!(join(&o1(), &k), None);
        assert!(!compatible(&o1(), &k));
    }

    #[test]
    fn join_is_least_upper_bound_here() {
        let j = join(&o2(), &o3()).unwrap();
        assert!(leq(&o2(), &j));
        assert!(leq(&o3(), &j));
    }

    #[test]
    fn meet_is_common_information() {
        let m = meet(&o2(), &o3()).unwrap();
        assert_eq!(m, o1());
        // Disagreeing base fields drop out of the meet.
        let a = Value::record([("x", Value::Int(1)), ("y", Value::Int(2))]);
        let b = Value::record([("x", Value::Int(9)), ("y", Value::Int(2))]);
        assert_eq!(meet(&a, &b), Some(Value::record([("y", Value::Int(2))])));
    }

    #[test]
    fn meet_of_unequal_bases_is_bottom() {
        assert_eq!(meet(&Value::Int(1), &Value::Int(2)), None);
        assert_eq!(meet(&Value::Int(1), &Value::Int(1)), Some(Value::Int(1)));
    }

    #[test]
    fn empty_record_is_bottom_of_records() {
        let empty = Value::record::<[(&str, Value); 0], &str>([]);
        assert!(leq(&empty, &o1()));
        assert_eq!(join(&empty, &o1()), Some(o1()));
        assert_eq!(meet(&empty, &o1()), Some(empty));
    }

    #[test]
    fn tags_must_match() {
        let a = Value::tagged("Ok", Value::record([("x", Value::Int(1))]));
        let b = Value::tagged("Ok", Value::record([("y", Value::Int(2))]));
        let c = Value::tagged("Err", Value::record([("x", Value::Int(1))]));
        assert!(join(&a, &b).is_some());
        assert_eq!(join(&a, &c), None);
        assert_eq!(meet(&a, &c), None);
    }

    #[test]
    fn refs_are_flat() {
        use crate::value::Oid;
        assert!(leq(&Value::Ref(Oid(1)), &Value::Ref(Oid(1))));
        assert!(!comparable(&Value::Ref(Oid(1)), &Value::Ref(Oid(2))));
    }

    #[test]
    fn set_hoare_ordering() {
        let small = Value::set([o1()]);
        let big = Value::set([o2(), o3()]);
        assert!(leq(&small, &big), "o1 is dominated by o2");
        assert!(!leq(&big, &small));
        // Empty set is the bottom.
        let empty = Value::set([]);
        assert!(leq(&empty, &small));
    }

    #[test]
    fn set_join_subsumes() {
        let a = Value::set([o1()]);
        let b = Value::set([o2()]);
        // o1 ⊑ o2, so the union canonicalizes to {o2}.
        assert_eq!(join(&a, &b), Some(Value::set([o2()])));
    }

    #[test]
    fn reduce_maximal_drops_dominated_and_dupes() {
        let r = reduce_maximal(vec![o1(), o2(), o3(), o2()]);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&o2()) && r.contains(&o3()));
        assert!(is_antichain(&r));
    }

    #[test]
    fn reduce_minimal_keeps_bottom_elements() {
        let r = reduce_minimal(vec![o1(), o2(), o3()]);
        assert_eq!(r, vec![o1()]);
    }

    #[test]
    fn lists_are_pointwise() {
        let a = Value::list([o1(), o1()]);
        let b = Value::list([o2(), o3()]);
        assert!(leq(&a, &b));
        let j = join(&a, &b).unwrap();
        assert_eq!(j, b);
        // Length mismatch: incomparable, no join.
        let c = Value::list([o1()]);
        assert!(!comparable(&a, &c));
        assert_eq!(join(&a, &c), None);
    }
}
