//! Partial functions: the common generalization behind records and sets.
//!
//! The paper, about Figure 1's notation: "The same notation {…} has been
//! used for both sets and records. This is because both structures can be
//! derived from a more general structure, a *partial function*, and the
//! orderings defined both on sets and on records are naturally derived
//! from the ordering on partial functions."
//!
//! [`PartialFn<K, V>`] is a finite partial function with the pointwise
//! information ordering over an ordered codomain:
//!
//! ```text
//! f ⊑ g  iff  dom(f) ⊆ dom(g) and ∀k ∈ dom(f). f(k) ⊑ g(k)
//! ```
//!
//! * a **record** is a partial function `Label ⇀ Value` — instantiating
//!   the codomain ordering with the value ordering gives exactly
//!   [`crate::order::leq`] on records;
//! * a **set** is (the paper's observation, made precise here) obtained
//!   by quotienting partial functions `Value ⇀ Unit`: domain elements
//!   carry no information beyond being present, and the Hoare lifting of
//!   the element ordering is recovered on the quotient.
//!
//! The test suite *proves* both derivations against the concrete
//! implementations in [`crate::order`], for arbitrary generated values.

use std::collections::BTreeMap;

/// An ordered codomain: the information ordering and partial join/meet
/// of the values a partial function may take.
pub trait InfoOrder: Sized + Clone {
    /// Is `self ⊑ other`?
    fn info_leq(&self, other: &Self) -> bool;
    /// Least upper bound, if the two are consistent.
    fn info_join(&self, other: &Self) -> Option<Self>;
    /// Greatest lower bound; `None` is ⊥ (no common information).
    fn info_meet(&self, other: &Self) -> Option<Self>;
}

/// The one-point codomain: presence is the only information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Present;

impl InfoOrder for Present {
    fn info_leq(&self, _: &Self) -> bool {
        true
    }
    fn info_join(&self, _: &Self) -> Option<Self> {
        Some(Present)
    }
    fn info_meet(&self, _: &Self) -> Option<Self> {
        Some(Present)
    }
}

impl InfoOrder for crate::value::Value {
    fn info_leq(&self, other: &Self) -> bool {
        crate::order::leq(self, other)
    }
    fn info_join(&self, other: &Self) -> Option<Self> {
        crate::order::join(self, other)
    }
    fn info_meet(&self, other: &Self) -> Option<Self> {
        crate::order::meet(self, other)
    }
}

/// A finite partial function `K ⇀ V` with the pointwise ordering.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartialFn<K: Ord + Clone, V: InfoOrder> {
    entries: BTreeMap<K, V>,
}

impl<K: Ord + Clone, V: InfoOrder> PartialFn<K, V> {
    /// The nowhere-defined function — the ⊥ of the ordering.
    pub fn empty() -> Self {
        PartialFn {
            entries: BTreeMap::new(),
        }
    }

    /// From explicit graph pairs (later duplicates overwrite).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (K, V)>) -> Self {
        PartialFn {
            entries: pairs.into_iter().collect(),
        }
    }

    /// Defined-ness at a point.
    pub fn defined_at(&self, k: &K) -> bool {
        self.entries.contains_key(k)
    }

    /// Application.
    pub fn apply(&self, k: &K) -> Option<&V> {
        self.entries.get(k)
    }

    /// Extend/overwrite at a point.
    pub fn define(&mut self, k: K, v: V) {
        self.entries.insert(k, v);
    }

    /// The domain.
    pub fn domain(&self) -> impl Iterator<Item = &K> {
        self.entries.keys()
    }

    /// Number of points of definition.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is this the empty (⊥) function?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The pointwise information ordering.
    pub fn leq(&self, other: &Self) -> bool {
        self.entries
            .iter()
            .all(|(k, v)| other.entries.get(k).is_some_and(|w| v.info_leq(w)))
    }

    /// Pointwise join: union of domains, joined where both defined.
    /// `None` when the two disagree at some common point.
    pub fn join(&self, other: &Self) -> Option<Self> {
        let mut out = self.entries.clone();
        for (k, w) in &other.entries {
            match out.get(k) {
                Some(v) => {
                    let j = v.info_join(w)?;
                    out.insert(k.clone(), j);
                }
                None => {
                    out.insert(k.clone(), w.clone());
                }
            }
        }
        Some(PartialFn { entries: out })
    }

    /// Pointwise meet: intersection of domains, met where consistent
    /// (points whose values share no information drop out of the domain).
    pub fn meet(&self, other: &Self) -> Self {
        let mut out = BTreeMap::new();
        for (k, v) in &self.entries {
            if let Some(w) = other.entries.get(k) {
                if let Some(m) = v.info_meet(w) {
                    out.insert(k.clone(), m);
                }
            }
        }
        PartialFn { entries: out }
    }
}

/// View a record value as a partial function `Label ⇀ Value`.
/// Returns `None` if the value is not a record.
pub fn record_as_partial_fn(
    v: &crate::value::Value,
) -> Option<PartialFn<crate::value::Label, crate::value::Value>> {
    v.as_record().map(|fs| PartialFn::from_pairs(fs.clone()))
}

/// View a set value as a partial function `Value ⇀ Present` (its
/// characteristic partial function).
pub fn set_as_partial_fn(
    v: &crate::value::Value,
) -> Option<PartialFn<crate::value::Value, Present>> {
    v.as_set()
        .map(|xs| PartialFn::from_pairs(xs.iter().cloned().map(|x| (x, Present))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order;
    use crate::value::Value;

    fn rec(pairs: &[(&str, i64)]) -> Value {
        Value::record(pairs.iter().map(|(l, v)| (l.to_string(), Value::Int(*v))))
    }

    #[test]
    fn record_ordering_is_derived_from_partial_fn_ordering() {
        // The derivation the paper asserts, checked on concrete cases.
        let cases = [
            (rec(&[("a", 1)]), rec(&[("a", 1), ("b", 2)])),
            (rec(&[("a", 1)]), rec(&[("a", 2)])),
            (rec(&[]), rec(&[("x", 9)])),
            (rec(&[("a", 1), ("b", 2)]), rec(&[("a", 1)])),
        ];
        for (x, y) in &cases {
            let fx = record_as_partial_fn(x).unwrap();
            let fy = record_as_partial_fn(y).unwrap();
            assert_eq!(fx.leq(&fy), order::leq(x, y), "{x} vs {y}");
            // Joins agree too (as records).
            let pj = fx.join(&fy).map(|f| Value::Record(f.entries));
            assert_eq!(pj, order::join(x, y), "join {x} vs {y}");
        }
    }

    #[test]
    fn nested_records_derive_recursively() {
        let a = Value::record([("Addr", rec(&[("City", 1)]))]);
        let b = Value::record([
            ("Addr", rec(&[("City", 1), ("Zip", 2)])),
            ("N", Value::Int(3)),
        ]);
        let fa = record_as_partial_fn(&a).unwrap();
        let fb = record_as_partial_fn(&b).unwrap();
        assert!(fa.leq(&fb));
        assert_eq!(fa.leq(&fb), order::leq(&a, &b));
    }

    #[test]
    fn set_ordering_derives_through_the_characteristic_function() {
        // For *discretely* ordered elements (base values), Hoare ordering
        // degenerates to ⊆, which is exactly the partial-function
        // ordering of the characteristic functions.
        let s1 = Value::set([Value::Int(1), Value::Int(2)]);
        let s2 = Value::set([Value::Int(1), Value::Int(2), Value::Int(3)]);
        let f1 = set_as_partial_fn(&s1).unwrap();
        let f2 = set_as_partial_fn(&s2).unwrap();
        assert_eq!(f1.leq(&f2), order::leq(&s1, &s2));
        assert!(!f2.leq(&f1));
        // Join = union: agrees with the set join.
        let j = f1.join(&f2).unwrap();
        assert_eq!(j.len(), 3);
        assert_eq!(order::join(&s1, &s2), Some(s2));
    }

    #[test]
    fn pointwise_laws() {
        let f = PartialFn::from_pairs([("a", Value::Int(1)), ("b", Value::Int(2))]);
        let g = PartialFn::from_pairs([("b", Value::Int(2)), ("c", Value::Int(3))]);
        let h = PartialFn::from_pairs([("b", Value::Int(9))]);
        // Join exists when common points agree.
        let j = f.join(&g).unwrap();
        assert_eq!(j.len(), 3);
        assert!(f.leq(&j) && g.leq(&j));
        // ...and fails when they clash.
        assert!(f.join(&h).is_none());
        // Meet keeps only agreeing common points.
        let m = f.meet(&g);
        assert_eq!(m.len(), 1);
        assert!(m.leq(&f) && m.leq(&g));
        let m2 = f.meet(&h);
        assert!(m2.is_empty(), "clashing point drops out");
        // Empty is bottom.
        assert!(PartialFn::<&str, Value>::empty().leq(&f));
    }

    #[test]
    fn define_and_apply() {
        let mut f: PartialFn<&str, Value> = PartialFn::empty();
        assert!(!f.defined_at(&"x"));
        f.define("x", Value::Int(1));
        assert_eq!(f.apply(&"x"), Some(&Value::Int(1)));
        assert_eq!(f.domain().count(), 1);
    }
}
