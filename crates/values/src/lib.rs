//! # dbpl-values — objects and the information ordering
//!
//! The value level of Buneman & Atkinson (SIGMOD 1986):
//!
//! * [`Value`]s: base values, lists, sets, **partial records**, variants,
//!   Amber-style **dynamic values** (value + type description), and
//!   [`Oid`]-based references giving genuine *object identity*;
//! * the **information ordering** `⊑` with its partial join `⊔` and meet
//!   `⊓` ([`order`]) — "inheritance on values";
//! * `typeOf` ([`type_of::type_of`]) and checked `dynamic`/`coerce`
//!   ([`conform::make_dynamic`], [`conform::coerce`]);
//! * conformance checking in both **strict** (static-typing) and
//!   **partial** (object/CPO) modes;
//! * a shared object [`Heap`] with reachability tracing and graph
//!   replication — the substrate both persistence models build on.

#![warn(missing_docs)]

pub mod conform;
pub mod display;
pub mod error;
pub mod heap;
pub mod order;
pub mod partialfn;
pub mod path;
pub mod type_of;
pub mod value;

pub use conform::{coerce, conforms, make_dynamic, Mode};
pub use error::ValueError;
pub use heap::{Heap, HeapObject};
pub use order::{
    comparable, compatible, is_antichain, join, leq, meet, reduce_maximal, reduce_minimal,
};
pub use partialfn::{record_as_partial_fn, set_as_partial_fn, InfoOrder, PartialFn, Present};
pub use path::{extend, get_path, put_path, without, Path};
pub use type_of::{carried_type, type_of};
pub use value::{DynValue, Label, Oid, RecordFields, Value, F64};
