//! Errors for value-level operations.

use crate::value::Oid;
use dbpl_types::Type;
use std::fmt;

/// Errors raised while typing, conforming, or dereferencing values.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueError {
    /// A reference pointed at no live heap object.
    DanglingRef(Oid),
    /// A value did not conform to an expected type.
    Conform {
        /// Rendered form of the offending value (possibly truncated).
        value: String,
        /// The expected type.
        expected: Type,
        /// Why it failed.
        reason: String,
    },
    /// A type error bubbled up from the type environment.
    Type(dbpl_types::TypeError),
    /// `coerce` was applied at an incompatible type (the paper's run-time
    /// exception when "the type associated with d is not string").
    CoerceFailed {
        /// Type carried by the dynamic value.
        carried: Type,
        /// Type demanded by the coercion.
        wanted: Type,
    },
    /// Attempted an operation on the wrong shape of value.
    Shape(String),
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::DanglingRef(o) => write!(f, "dangling reference {o}"),
            ValueError::Conform {
                value,
                expected,
                reason,
            } => {
                write!(f, "value {value} does not conform to {expected}: {reason}")
            }
            ValueError::Type(e) => write!(f, "{e}"),
            ValueError::CoerceFailed { carried, wanted } => {
                write!(
                    f,
                    "coerce failed: dynamic value carries {carried}, wanted {wanted}"
                )
            }
            ValueError::Shape(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ValueError {}

impl From<dbpl_types::TypeError> for ValueError {
    fn from(e: dbpl_types::TypeError) -> Self {
        ValueError::Type(e)
    }
}
