//! Paths into nested records, and record-extension operations.
//!
//! Object-level inheritance turns "a Person into an Employee" by *adding
//! information*; [`extend`] and [`put_path`] are the mutating counterparts
//! of the join `⊔` for the common case of adding or refining fields.

use crate::error::ValueError;
use crate::value::{Label, Value};
use std::fmt;

/// A dotted path into nested records, e.g. `Address.City`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Path(pub Vec<Label>);

impl Path {
    /// Parse `"A.B.C"` into a path.
    pub fn parse(s: &str) -> Path {
        Path(
            s.split('.')
                .filter(|p| !p.is_empty())
                .map(str::to_string)
                .collect(),
        )
    }

    /// A single-segment path.
    pub fn field(l: impl Into<String>) -> Path {
        Path(vec![l.into()])
    }

    /// Is this the empty (root) path?
    pub fn is_root(&self) -> bool {
        self.0.is_empty()
    }
}

impl std::borrow::Borrow<[Label]> for Path {
    // Ord on Path derives from Vec<Label>, which orders exactly like
    // [Label] — so borrowed-slice map lookups agree with owned keys.
    fn borrow(&self) -> &[Label] {
        &self.0
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.join("."))
    }
}

impl From<&str> for Path {
    fn from(s: &str) -> Self {
        Path::parse(s)
    }
}

/// Fetch the value at `path`, if every intermediate record and field
/// exists.
pub fn get_path<'v>(v: &'v Value, path: &Path) -> Option<&'v Value> {
    let mut cur = v;
    for seg in &path.0 {
        cur = cur.field(seg)?;
    }
    Some(cur)
}

/// Set the value at `path`, creating intermediate (partial) records as
/// needed. Fails if an intermediate value exists but is not a record.
pub fn put_path(v: &mut Value, path: &Path, new: Value) -> Result<(), ValueError> {
    if path.is_root() {
        *v = new;
        return Ok(());
    }
    let mut cur = v;
    let (last, init) = path.0.split_last().expect("non-root path");
    for seg in init {
        let fields = cur
            .as_record_mut()
            .ok_or_else(|| ValueError::Shape(format!("`{seg}`: not a record on path")))?;
        cur = fields
            .entry(seg.clone())
            .or_insert_with(|| Value::record::<[(&str, Value); 0], &str>([]));
    }
    let fields = cur
        .as_record_mut()
        .ok_or_else(|| ValueError::Shape(format!("`{last}`: not a record on path")))?;
    fields.insert(last.clone(), new);
    Ok(())
}

/// Record extension: `base with {l = v, ...}` — the paper's operation for
/// turning a `Person` value into an `Employee` value by "adding
/// information to some Person value". Overwriting an existing field is
/// allowed (this is extension in the programming-language sense; use
/// [`crate::order::join`] for the strictly information-increasing merge).
pub fn extend<I, S>(base: &Value, additions: I) -> Result<Value, ValueError>
where
    I: IntoIterator<Item = (S, Value)>,
    S: Into<String>,
{
    let mut fields = base
        .as_record()
        .ok_or_else(|| ValueError::Shape("`with` applies to records".into()))?
        .clone();
    for (l, v) in additions {
        fields.insert(l.into(), v);
    }
    Ok(Value::Record(fields))
}

/// Remove a field, yielding a *less* informative record (moving down the
/// information ordering). Returns the base unchanged if the field was
/// absent.
pub fn without(base: &Value, label: &str) -> Result<Value, ValueError> {
    let mut fields = base
        .as_record()
        .ok_or_else(|| ValueError::Shape("`without` applies to records".into()))?
        .clone();
    fields.remove(label);
    Ok(Value::Record(fields))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::leq;

    fn person() -> Value {
        Value::record([
            ("Name", Value::str("J Doe")),
            ("Address", Value::record([("City", Value::str("Austin"))])),
        ])
    }

    #[test]
    fn get_path_navigates() {
        let p = person();
        assert_eq!(
            get_path(&p, &"Address.City".into()),
            Some(&Value::str("Austin"))
        );
        assert_eq!(get_path(&p, &"Address.Zip".into()), None);
        assert_eq!(get_path(&p, &Path::default()), Some(&p));
    }

    #[test]
    fn put_path_refines() {
        let mut p = person();
        put_path(&mut p, &"Address.Zip".into(), Value::Int(78759)).unwrap();
        assert_eq!(
            get_path(&p, &"Address.Zip".into()),
            Some(&Value::Int(78759))
        );
        assert!(leq(&person(), &p), "refinement moves up the ordering");
    }

    #[test]
    fn put_path_creates_intermediates() {
        let mut v = Value::record::<[(&str, Value); 0], &str>([]);
        put_path(&mut v, &"A.B.C".into(), Value::Int(1)).unwrap();
        assert_eq!(get_path(&v, &"A.B.C".into()), Some(&Value::Int(1)));
    }

    #[test]
    fn put_path_rejects_non_records() {
        let mut v = Value::record([("x", Value::Int(1))]);
        assert!(put_path(&mut v, &"x.y".into(), Value::Int(2)).is_err());
    }

    #[test]
    fn extend_makes_an_employee() {
        let p = person();
        let e = extend(&p, [("Empno", Value::Int(1234))]).unwrap();
        assert!(leq(&p, &e), "extension adds information");
        assert_eq!(e.field("Empno"), Some(&Value::Int(1234)));
        assert!(extend(&Value::Int(1), [("x", Value::Unit)]).is_err());
    }

    #[test]
    fn without_loses_information() {
        let p = person();
        let q = without(&p, "Address").unwrap();
        assert!(leq(&q, &p));
        assert_eq!(q.field("Address"), None);
    }

    #[test]
    fn path_display_roundtrip() {
        let p = Path::parse("Address.City");
        assert_eq!(p.to_string(), "Address.City");
        assert_eq!(Path::parse(&p.to_string()), p);
    }
}
