//! Runtime values.
//!
//! Values are the "objects" of the paper's object-level discussion: records
//! whose components may themselves be records, plus the usual base values,
//! lists, sets, tagged (variant) values, Amber-style dynamic values, and
//! references carrying *object identity* (the paper: "objects are not
//! identified by intrinsic properties").
//!
//! A record value is inherently *partial*: `{Name = 'J Doe'}` carries less
//! information than `{Name = 'J Doe', Emp_no = 1234}`. The information
//! ordering and join live in [`crate::order`].

use dbpl_types::Type;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A field label (shared with `dbpl_types::Label`).
pub type Label = String;

/// A totally ordered `f64` wrapper so that [`Value`] can implement `Ord`
/// (required to put values in sets, i.e. relations).
#[derive(Clone, Copy, Debug)]
pub struct F64(pub f64);

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}
impl Eq for F64 {}
impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl std::hash::Hash for F64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state)
    }
}
impl From<f64> for F64 {
    fn from(x: f64) -> Self {
        F64(x)
    }
}
impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.fract() == 0.0 && self.0.is_finite() {
            write!(f, "{:.1}", self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// An object identity: a handle into a [`crate::heap::Heap`].
///
/// Two structurally identical objects with different `Oid`s are *different
/// objects* — the University parking lot can hold "two identical cars".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Oid(pub u64);

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A dynamic value: a value that "carries around both a value and a type"
/// (Amber's `Dynamic`). Constructed by the `dynamic` operation, eliminated
/// by `coerce`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DynValue {
    /// The type description carried with the value.
    pub ty: Type,
    /// The value itself.
    pub value: Value,
}

impl DynValue {
    /// Pair a value with a type description. The pairing is *not* checked
    /// here — use [`crate::conform::make_dynamic`] for the checked
    /// constructor.
    pub fn new(ty: Type, value: Value) -> Self {
        DynValue { ty, value }
    }
}

/// The fields of a record value.
pub type RecordFields = BTreeMap<Label, Value>;

/// A runtime value.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Value {
    /// The unit value.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float (totally ordered wrapper).
    Float(F64),
    /// A string.
    Str(String),
    /// A homogeneous list.
    List(Vec<Value>),
    /// A set of values.
    Set(BTreeSet<Value>),
    /// A (possibly partial) record.
    Record(RecordFields),
    /// A variant value: a label applied to a payload.
    Tagged(Label, Box<Value>),
    /// A dynamic value (value + its type description).
    Dyn(Box<DynValue>),
    /// A reference to a heap object: pure object identity.
    Ref(Oid),
}

impl Value {
    /// Float constructor from `f64`.
    pub fn float(x: f64) -> Value {
        Value::Float(F64(x))
    }

    /// String constructor.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Record constructor.
    pub fn record<I, S>(fields: I) -> Value
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<String>,
    {
        Value::Record(fields.into_iter().map(|(l, v)| (l.into(), v)).collect())
    }

    /// List constructor.
    pub fn list<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::List(items.into_iter().collect())
    }

    /// Set constructor (deduplicates).
    pub fn set<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::Set(items.into_iter().collect())
    }

    /// Variant constructor.
    pub fn tagged(label: impl Into<String>, payload: Value) -> Value {
        Value::Tagged(label.into(), Box::new(payload))
    }

    /// Dynamic-injection: `dynamic v : T`.
    pub fn dynamic(ty: Type, value: Value) -> Value {
        Value::Dyn(Box::new(DynValue::new(ty, value)))
    }

    /// Is this a record?
    pub fn is_record(&self) -> bool {
        matches!(self, Value::Record(_))
    }

    /// View as record fields, if a record.
    pub fn as_record(&self) -> Option<&RecordFields> {
        match self {
            Value::Record(fs) => Some(fs),
            _ => None,
        }
    }

    /// Mutable view as record fields, if a record.
    pub fn as_record_mut(&mut self) -> Option<&mut RecordFields> {
        match self {
            Value::Record(fs) => Some(fs),
            _ => None,
        }
    }

    /// Field projection on records.
    pub fn field(&self, label: &str) -> Option<&Value> {
        self.as_record().and_then(|fs| fs.get(label))
    }

    /// View as integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// View as float, widening integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(F64(x)) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// View as string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// View as boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// View as list slice.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(xs) => Some(xs),
            _ => None,
        }
    }

    /// View as a set.
    pub fn as_set(&self) -> Option<&BTreeSet<Value>> {
        match self {
            Value::Set(xs) => Some(xs),
            _ => None,
        }
    }

    /// View as an object reference.
    pub fn as_ref_oid(&self) -> Option<Oid> {
        match self {
            Value::Ref(o) => Some(*o),
            _ => None,
        }
    }

    /// View as a dynamic value.
    pub fn as_dyn(&self) -> Option<&DynValue> {
        match self {
            Value::Dyn(d) => Some(d),
            _ => None,
        }
    }

    /// All object references reachable *within* this value (not following
    /// the heap). Used by persistence to compute closures.
    pub fn direct_refs(&self) -> BTreeSet<Oid> {
        let mut acc = BTreeSet::new();
        self.collect_refs(&mut acc);
        acc
    }

    fn collect_refs(&self, acc: &mut BTreeSet<Oid>) {
        match self {
            Value::Ref(o) => {
                acc.insert(*o);
            }
            Value::List(xs) => xs.iter().for_each(|v| v.collect_refs(acc)),
            Value::Set(xs) => xs.iter().for_each(|v| v.collect_refs(acc)),
            Value::Record(fs) => fs.values().for_each(|v| v.collect_refs(acc)),
            Value::Tagged(_, v) => v.collect_refs(acc),
            Value::Dyn(d) => d.value.collect_refs(acc),
            _ => {}
        }
    }

    /// Structural size (number of value constructors).
    pub fn size(&self) -> usize {
        match self {
            Value::List(xs) => 1 + xs.iter().map(Value::size).sum::<usize>(),
            Value::Set(xs) => 1 + xs.iter().map(Value::size).sum::<usize>(),
            Value::Record(fs) => 1 + fs.values().map(Value::size).sum::<usize>(),
            Value::Tagged(_, v) => 1 + v.size(),
            Value::Dyn(d) => 1 + d.value.size(),
            _ => 1,
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::float(x)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::display::fmt_value(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_field_access() {
        let v = Value::record([("Name", Value::str("J Doe")), ("Age", Value::Int(40))]);
        assert_eq!(v.field("Name"), Some(&Value::str("J Doe")));
        assert_eq!(v.field("Missing"), None);
    }

    #[test]
    fn f64_total_order_handles_nan() {
        let mut s = BTreeSet::new();
        s.insert(Value::float(f64::NAN));
        s.insert(Value::float(1.0));
        s.insert(Value::float(f64::NAN));
        assert_eq!(s.len(), 2, "NaN equals itself under total order");
    }

    #[test]
    fn direct_refs_finds_nested() {
        let v = Value::record([
            ("a", Value::Ref(Oid(1))),
            ("b", Value::list([Value::Ref(Oid(2)), Value::Int(3)])),
            ("c", Value::tagged("Some", Value::Ref(Oid(3)))),
        ]);
        assert_eq!(v.direct_refs(), BTreeSet::from([Oid(1), Oid(2), Oid(3)]));
    }

    #[test]
    fn set_deduplicates() {
        let v = Value::set([Value::Int(1), Value::Int(1), Value::Int(2)]);
        assert_eq!(v.as_set().unwrap().len(), 2);
    }

    #[test]
    fn size_counts() {
        let v = Value::record([("a", Value::Int(1)), ("b", Value::list([Value::Int(2)]))]);
        assert_eq!(v.size(), 4);
    }

    #[test]
    fn widening_view() {
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        assert_eq!(Value::float(3.5).as_float(), Some(3.5));
        assert_eq!(Value::float(3.5).as_int(), None);
    }
}
