//! Value pretty-printing in the paper's record notation:
//! `{Name = 'J Doe', Address = {City = 'Austin'}}`.

use crate::value::Value;
use std::fmt;

pub(crate) fn fmt_value(v: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match v {
        Value::Unit => write!(f, "()"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Int(i) => write!(f, "{i}"),
        Value::Float(x) => write!(f, "{x}"),
        Value::Str(s) => write!(f, "'{s}'"),
        Value::List(xs) => {
            write!(f, "[")?;
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                fmt_value(x, f)?;
            }
            write!(f, "]")
        }
        Value::Set(xs) => {
            write!(f, "{{|")?;
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                fmt_value(x, f)?;
            }
            write!(f, "|}}")
        }
        Value::Record(fs) => {
            write!(f, "{{")?;
            for (i, (l, x)) in fs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l} = ")?;
                fmt_value(x, f)?;
            }
            write!(f, "}}")
        }
        Value::Tagged(l, x) => {
            write!(f, "{l}(")?;
            fmt_value(x, f)?;
            write!(f, ")")
        }
        Value::Dyn(d) => {
            write!(f, "dynamic(")?;
            fmt_value(&d.value, f)?;
            write!(f, " : {})", d.ty)
        }
        Value::Ref(o) => write!(f, "{o}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpl_types::Type;

    #[test]
    fn paper_notation() {
        let v = Value::record([
            ("Name", Value::str("J Doe")),
            ("Address", Value::record([("City", Value::str("Austin"))])),
        ]);
        assert_eq!(
            v.to_string(),
            "{Address = {City = 'Austin'}, Name = 'J Doe'}"
        );
    }

    #[test]
    fn collections_and_dyn() {
        assert_eq!(
            Value::list([Value::Int(1), Value::Int(2)]).to_string(),
            "[1, 2]"
        );
        assert_eq!(Value::set([Value::Int(1)]).to_string(), "{|1|}");
        assert_eq!(
            Value::dynamic(Type::Int, Value::Int(3)).to_string(),
            "dynamic(3 : Int)"
        );
        assert_eq!(Value::tagged("Ok", Value::Unit).to_string(), "Ok(())");
        assert_eq!(Value::float(2.0).to_string(), "2.0");
    }
}
