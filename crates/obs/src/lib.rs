//! # dbpl-obs — unified observability for the dbpl stack
//!
//! A zero-heavy-dependency observability layer shared by every crate in
//! the workspace:
//!
//! * [`MetricsRegistry`] — named, relaxed-atomic [`Counter`]s and
//!   fixed-bucket latency [`Histogram`]s, with a process-wide instance
//!   behind [`global()`]. Hot paths cache their `Arc<Counter>` handle in
//!   a `OnceLock` so steady-state cost is one relaxed atomic add.
//! * [`span!`] — lightweight span timing: the returned guard records the
//!   elapsed wall time into the `span.<name>` histogram when dropped
//!   (through a per-call-site cached handle — no allocation on entry).
//!   While tracing is active ([`trace`]), the same guards compose into
//!   hierarchical trace trees: thread-local `trace_id`/`span_id`/
//!   `parent_id` context, a bounded [`TraceBuffer`] ring of completed
//!   spans with attributes, a slow-op log, and Chrome-trace /
//!   EXPLAIN-ANALYZE exporters on top.
//! * [`timeline`] — the flight recorder: a background sampler thread
//!   snapshots the whole registry at a fixed interval into a bounded
//!   drop-oldest ring, computes per-interval deltas and p50/p95/p99
//!   estimates from the fixed buckets, evaluates declarative SLOs with
//!   burn-rate + hysteresis, and exports JSONL / Chrome `ph:"C"`
//!   counter tracks.
//! * [`Event`] / [`EventSink`] — structured events (transaction
//!   lifecycle, quarantine, salvage, retries, injected faults) rendered
//!   as stable JSONL. With no sink attached, [`emit`] costs one relaxed
//!   atomic load plus one counter bump; attach a sink with [`set_sink`]
//!   to stream events out of the process.
//!
//! The metric catalogue and the event schema are documented in
//! `docs/OBSERVABILITY.md`; the JSONL field names and types are pinned
//! by golden tests in this crate.

#![warn(missing_docs)]

mod event;
pub mod json;
mod metrics;
mod span;
pub mod timeline;
pub mod trace;

pub use event::{clear_sink, emit, set_sink, sink_attached, Event, EventSink, MemorySink};
pub use metrics::{
    global, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, StatsSnapshot,
    BUCKET_BOUNDS_US,
};
pub use span::SpanGuard;
pub use trace::{SpanRecord, TraceBuffer, TraceContext};

/// Escape a string for inclusion in a JSON document (used by the
/// hand-rolled JSON writers here and in the crates that serialize
/// snapshots; the workspace deliberately carries no serde).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
