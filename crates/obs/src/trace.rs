//! Hierarchical trace trees: thread-local span context, a bounded ring
//! of completed spans, and the exporters built on it.
//!
//! Every [`span!`](crate::span!) site participates: while tracing is
//! active (at least one of [`enable`], [`capture`], or a slow-op
//! threshold), each guard allocates a `span_id`, inherits the
//! thread-local parent, and pushes a [`SpanRecord`] into the global
//! [`TraceBuffer`] ring when it drops — so the flat histogram samples of
//! the metrics layer compose into causal trees. While tracing is
//! *inactive*, the same sites cost one cached-histogram record and
//! **zero allocations** (asserted by `tests/span_alloc.rs`).
//!
//! Three consumers sit on the buffer:
//!
//! * [`capture`] — run a closure under a fresh root span and return its
//!   whole subtree (the `explainAnalyze` builtins and
//!   `Session::run_profiled` render it with [`render_tree`]);
//! * the slow-op log — [`set_slow_threshold_us`] makes every *root*
//!   span that exceeds the threshold emit an
//!   [`Event::SlowOp`](crate::Event::SlowOp) carrying its subtree;
//! * [`export_chrome`] — render spans as Chrome
//!   `chrome://tracing` / Perfetto JSON for flamegraph viewing.
//!
//! Cross-thread composition: scoped workers (ParScan chunks, parallel
//! join products) capture [`current`] in the parent thread and
//! [`adopt`] it inside the spawned closure, so their spans carry the
//! parent's `trace_id`/`parent_id` and the exported tree stays
//! connected.

use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Ring capacity used by [`capture`] and the slow-op log when tracing is
/// not already enabled with an explicit capacity.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// One completed span, as stored in the [`TraceBuffer`] ring.
///
/// `trace_id` is the `span_id` of the tree's root, so one equality test
/// groups a whole tree; `parent_id` is `None` exactly at the root.
/// Times are microseconds since an arbitrary process-wide epoch, taken
/// from one monotonic clock — a child's `[start_us, start_us + dur_us]`
/// interval always nests within its parent's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The root span's id — shared by every span of one tree.
    pub trace_id: u64,
    /// This span's process-unique id.
    pub span_id: u64,
    /// The enclosing span's id (`None` at the root).
    pub parent_id: Option<u64>,
    /// The `span!` site name (also names the `span.<name>` histogram).
    pub name: &'static str,
    /// Start, in microseconds since the process trace epoch.
    pub start_us: u64,
    /// Duration in microseconds (saturating).
    pub dur_us: u64,
    /// A small per-thread integer (stable within the process).
    pub tid: u64,
    /// Attributes attached via `SpanGuard::set_attr` (rows, strategy,
    /// bytes, …), in attachment order.
    pub attrs: Vec<(&'static str, String)>,
}

impl SpanRecord {
    /// Render as one JSON object (the wire form used inside
    /// [`Event::SlowOp`](crate::Event::SlowOp) lines): `parent_id` is
    /// `null` at the root, attrs become a string-valued object.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"name\":\"{}\",\"trace_id\":{},\"span_id\":{},\"parent_id\":{},\"start_us\":{},\"dur_us\":{},\"tid\":{},\"attrs\":{{",
            crate::json_escape(self.name),
            self.trace_id,
            self.span_id,
            self.parent_id
                .map_or("null".to_string(), |p| p.to_string()),
            self.start_us,
            self.dur_us,
            self.tid,
        );
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":\"{}\"",
                crate::json_escape(k),
                crate::json_escape(v)
            ));
        }
        out.push_str("}}");
        out
    }
}

/// The (trace, span) pair a worker thread adopts to attach its spans
/// under a parent from another thread. Capture with [`current`] in the
/// parent, [`adopt`] in the worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The tree's root span id.
    pub trace_id: u64,
    /// The span the adopting thread's spans become children of.
    pub span_id: u64,
}

// ---------------------------------------------------------------------------
// thread-local context + id allocation
// ---------------------------------------------------------------------------

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The innermost open traced span on this thread: (trace_id, span_id).
    static CURRENT: Cell<Option<(u64, u64)>> = const { Cell::new(None) };
    /// Small stable per-thread id for trace export. Allocation also
    /// registers the OS thread's name, so exporters can label tracks.
    static TID: u64 = {
        let t = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map_or_else(|| format!("thread-{t}"), str::to_string);
        thread_name_registry().lock().insert(t, name);
        t
    };
}

fn tid() -> u64 {
    TID.with(|t| *t)
}

fn thread_name_registry() -> &'static Mutex<std::collections::BTreeMap<u64, String>> {
    static NAMES: OnceLock<Mutex<std::collections::BTreeMap<u64, String>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(std::collections::BTreeMap::new()))
}

/// The name registered for an exported `tid`, if that thread has traced
/// anything yet. Named threads (`dbpl-applier`, recorder, scoped
/// workers) report their OS name; anonymous ones get `thread-<tid>`.
pub fn thread_name(tid: u64) -> Option<String> {
    thread_name_registry().lock().get(&tid).cloned()
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn saturating_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn now_us() -> u64 {
    saturating_us(epoch().elapsed())
}

/// The current thread's innermost traced span, if any — capture this
/// *before* `std::thread::scope` and [`adopt`] it inside each worker.
pub fn current() -> Option<TraceContext> {
    CURRENT
        .with(|c| c.get())
        .map(|(trace_id, span_id)| TraceContext { trace_id, span_id })
}

/// Install `ctx` as this thread's span context until the returned guard
/// drops (restoring whatever was there before). `adopt(None)` detaches:
/// spans opened under it start fresh traces — [`capture`] uses this so a
/// profile nested inside a traced run gets its own tree.
pub fn adopt(ctx: Option<TraceContext>) -> ContextGuard {
    let prev = CURRENT.with(|c| c.replace(ctx.map(|x| (x.trace_id, x.span_id))));
    ContextGuard { prev }
}

/// Restores the previous thread-local context on drop; see [`adopt`].
#[derive(Debug)]
pub struct ContextGuard {
    prev: Option<(u64, u64)>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

// ---------------------------------------------------------------------------
// the ring buffer
// ---------------------------------------------------------------------------

/// The bounded in-memory ring of completed spans. One process-global
/// instance sits behind [`enable`]/[`buffered`]/[`take_trace`]; the
/// struct itself is public so its drop-oldest behaviour is unit-testable
/// in isolation.
#[derive(Debug)]
pub struct TraceBuffer {
    spans: VecDeque<SpanRecord>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// An empty buffer holding at most `capacity` spans.
    pub fn new(capacity: usize) -> TraceBuffer {
        TraceBuffer {
            spans: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Append one completed span, evicting the *oldest* first when full.
    pub fn push(&mut self, span: SpanRecord) {
        while self.spans.len() >= self.capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(span);
    }

    /// Change the capacity, evicting oldest-first down to the new bound.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.spans.len() > self.capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
    }

    /// Buffered spans, oldest first (completion order).
    pub fn spans(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter()
    }

    /// Number of buffered spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the buffer holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// How many spans have been evicted since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

static ACTIVE: AtomicU64 = AtomicU64::new(0);
static SLOW_US: AtomicU64 = AtomicU64::new(u64::MAX);

fn ring() -> &'static Mutex<TraceBuffer> {
    static RING: OnceLock<Mutex<TraceBuffer>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(TraceBuffer::new(DEFAULT_TRACE_CAPACITY)))
}

/// Whether span sites currently record trace trees (cheap relaxed load —
/// this is the only cost tracing adds to an instrumented path when off).
#[inline]
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed) > 0
}

/// Start recording completed spans into the global ring (at most
/// `capacity` retained, oldest evicted first). Activation is
/// reference-counted: pair every `enable` with a [`disable`]. Buffered
/// spans survive `disable` — export first, then [`clear`] when done.
pub fn enable(capacity: usize) {
    ring().lock().set_capacity(capacity);
    ACTIVE.fetch_add(1, Ordering::Relaxed);
}

/// Drop one [`enable`] reference; recording stops at zero.
pub fn disable() {
    let _ = ACTIVE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
}

/// Snapshot every buffered span, oldest first.
pub fn buffered() -> Vec<SpanRecord> {
    ring().lock().spans().cloned().collect()
}

/// Remove and return the spans of one trace, sorted by
/// `(start_us, span_id)` — parents before children. Spans of other
/// traces stay buffered.
pub fn take_trace(trace_id: u64) -> Vec<SpanRecord> {
    let mut r = ring().lock();
    let mut taken = Vec::new();
    r.spans.retain(|s| {
        if s.trace_id == trace_id {
            taken.push(s.clone());
            false
        } else {
            true
        }
    });
    drop(r);
    taken.sort_by_key(|s| (s.start_us, s.span_id));
    taken
}

/// Discard every buffered span.
pub fn clear() {
    ring().lock().spans.clear();
}

/// Set (or with `None`, clear) the slow-op threshold: while set, every
/// *root* span whose duration reaches the threshold emits an
/// [`Event::SlowOp`](crate::Event::SlowOp) carrying the root's whole
/// buffered subtree. Setting a threshold keeps tracing active
/// (reference-counted like [`enable`]), so the subtree is actually
/// there. Process-global, like the registry and the sink.
pub fn set_slow_threshold_us(threshold: Option<u64>) {
    let new = threshold.unwrap_or(u64::MAX);
    let old = SLOW_US.swap(new, Ordering::Relaxed);
    if old == u64::MAX && new != u64::MAX {
        enable(DEFAULT_TRACE_CAPACITY);
    } else if old != u64::MAX && new == u64::MAX {
        disable();
    }
}

// ---------------------------------------------------------------------------
// span-site integration (used by SpanGuard)
// ---------------------------------------------------------------------------

/// The traced half of an open `SpanGuard`, created only while tracing is
/// active.
#[derive(Debug)]
pub(crate) struct TraceSlot {
    trace_id: u64,
    span_id: u64,
    parent_id: Option<u64>,
    name: &'static str,
    start_us: u64,
    prev: Option<(u64, u64)>,
    pub(crate) attrs: Vec<(&'static str, String)>,
}

/// Open a traced span: allocate an id, inherit the thread-local parent,
/// and become the thread's innermost span. Returns `None` (and touches
/// nothing) while tracing is inactive.
pub(crate) fn open_slot(name: &'static str) -> Option<TraceSlot> {
    if !is_active() {
        return None;
    }
    let span_id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT.with(|c| c.get());
    let (trace_id, parent_id) = match parent {
        Some((trace, span)) => (trace, Some(span)),
        None => (span_id, None),
    };
    CURRENT.with(|c| c.set(Some((trace_id, span_id))));
    Some(TraceSlot {
        trace_id,
        span_id,
        parent_id,
        name,
        start_us: now_us(),
        prev: parent,
        attrs: Vec::new(),
    })
}

/// Close a traced span: restore the thread-local parent, push the
/// completed record, and fire the slow-op check on roots.
pub(crate) fn close_slot(slot: TraceSlot) {
    CURRENT.with(|c| c.set(slot.prev));
    let record = SpanRecord {
        trace_id: slot.trace_id,
        span_id: slot.span_id,
        parent_id: slot.parent_id,
        name: slot.name,
        start_us: slot.start_us,
        dur_us: now_us().saturating_sub(slot.start_us),
        tid: tid(),
        attrs: slot.attrs,
    };
    let is_root = record.parent_id.is_none();
    let slow = is_root && record.dur_us >= SLOW_US.load(Ordering::Relaxed);
    let subtree = {
        let mut r = ring().lock();
        r.push(record.clone());
        if slow {
            let mut spans: Vec<SpanRecord> = r
                .spans()
                .filter(|s| s.trace_id == record.trace_id)
                .cloned()
                .collect();
            spans.sort_by_key(|s| (s.start_us, s.span_id));
            Some(spans)
        } else {
            None
        }
    };
    if let Some(spans) = subtree {
        // Emitted outside the ring lock: sinks may be arbitrarily slow.
        crate::emit(crate::Event::SlowOp {
            name: record.name.to_string(),
            dur_us: record.dur_us,
            spans,
        });
    }
}

// ---------------------------------------------------------------------------
// capture
// ---------------------------------------------------------------------------

/// Run `f` under a fresh root span named `name` and return its result
/// together with the completed trace (root included), sorted parents
/// before children. Tracing is enabled for the duration (and left in
/// whatever state it was); the captured spans are *removed* from the
/// ring, so concurrent captures don't see each other's trees. The root
/// is detached from any enclosing span on this thread — a capture nested
/// inside a traced `run` still yields exactly its own tree.
pub fn capture<R>(name: &'static str, f: impl FnOnce() -> R) -> (R, Vec<SpanRecord>) {
    enable(DEFAULT_TRACE_CAPACITY);
    let _detach = adopt(None);
    let slot = open_slot(name).expect("tracing just enabled");
    let trace_id = slot.trace_id;
    let r = f();
    close_slot(slot);
    disable();
    (r, take_trace(trace_id))
}

// ---------------------------------------------------------------------------
// exporters
// ---------------------------------------------------------------------------

/// Render spans as a Chrome trace-event JSON array (`chrome://tracing`,
/// Perfetto): metadata events (`"ph":"M"`) naming the process and every
/// participating thread track, then one complete event (`"ph":"X"`) per
/// span with `ts`/`dur` in microseconds, `pid` fixed at 1, `tid` the
/// span's thread, and the span/trace ids plus every attribute under
/// `args`.
pub fn export_chrome(spans: &[SpanRecord]) -> String {
    let mut out = String::from("[");
    let mut first = true;
    push_metadata_events(spans, &mut out, &mut first);
    push_span_events(spans, &mut out, &mut first);
    out.push_str("\n]\n");
    out
}

/// Like [`export_chrome`], but the span events are followed by Chrome
/// counter events (`"ph":"C"`): one per `span.<name>` histogram in
/// `stats`, carrying the site's total observation count and summed
/// duration. Perfetto draws these as counter tracks alongside the
/// timeline, so a trace file alone shows both *this* capture's spans and
/// the process-lifetime totals per instrumented site.
pub fn export_chrome_with_counters(spans: &[SpanRecord], stats: &crate::StatsSnapshot) -> String {
    let mut out = String::from("[");
    let mut first = true;
    push_metadata_events(spans, &mut out, &mut first);
    push_span_events(spans, &mut out, &mut first);
    // Counters are point samples; stamp them at the end of the captured
    // window so they sit after the spans on the timeline.
    let ts = spans
        .iter()
        .map(|s| s.start_us + s.dur_us)
        .max()
        .unwrap_or(0);
    for (name, h) in &stats.histograms {
        if !name.starts_with("span.") {
            continue;
        }
        push_event(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"{}\",\"cat\":\"dbpl\",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\"args\":{{\"count\":{},\"sum_us\":{}}}}}",
                crate::json_escape(name),
                h.count,
                h.sum_us,
            ),
        );
    }
    out.push_str("\n]\n");
    out
}

/// Append one comma-separated event line to an in-progress JSON array.
fn push_event(out: &mut String, first: &mut bool, event: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("\n  ");
    out.push_str(event);
}

/// Append Chrome metadata events (`"ph":"M"`): one `process_name` for
/// the fixed pid, then one `thread_name` per distinct `tid` in `spans`,
/// so Perfetto labels the recorder/applier/worker tracks with their OS
/// thread names instead of bare integers.
fn push_metadata_events(spans: &[SpanRecord], out: &mut String, first: &mut bool) {
    push_event(
        out,
        first,
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"dbpl\"}}",
    );
    let tids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.tid).collect();
    for t in tids {
        let name = thread_name(t).unwrap_or_else(|| format!("thread-{t}"));
        push_event(
            out,
            first,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{t},\"args\":{{\"name\":\"{}\"}}}}",
                crate::json_escape(&name)
            ),
        );
    }
}

/// Append the `"ph":"X"` complete events for `spans` (no enclosing
/// brackets) — shared by both Chrome exporters.
fn push_span_events(spans: &[SpanRecord], out: &mut String, first: &mut bool) {
    for s in spans {
        let mut ev = format!(
            "{{\"name\":\"{}\",\"cat\":\"dbpl\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"trace_id\":{},\"span_id\":{},\"parent_id\":{}",
            crate::json_escape(s.name),
            s.start_us,
            s.dur_us,
            s.tid,
            s.trace_id,
            s.span_id,
            s.parent_id.map_or("null".to_string(), |p| p.to_string()),
        );
        for (k, v) in &s.attrs {
            ev.push_str(&format!(
                ",\"{}\":\"{}\"",
                crate::json_escape(k),
                crate::json_escape(v)
            ));
        }
        ev.push_str("}}");
        push_event(out, first, &ev);
    }
}

/// Render spans as an indented EXPLAIN-ANALYZE-style tree: one line per
/// span — name, duration, attributes — children indented under their
/// parent, ordered by start time. Spans whose parent is absent from the
/// slice are printed as roots, so a truncated ring still renders.
pub fn render_tree(spans: &[SpanRecord]) -> String {
    use std::collections::{BTreeMap, BTreeSet};
    let ids: BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
    let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for s in spans {
        match s.parent_id {
            Some(p) if ids.contains(&p) => children.entry(p).or_default().push(s),
            _ => roots.push(s),
        }
    }
    let by_start =
        |a: &&SpanRecord, b: &&SpanRecord| (a.start_us, a.span_id).cmp(&(b.start_us, b.span_id));
    roots.sort_by(by_start);
    for v in children.values_mut() {
        v.sort_by(by_start);
    }
    fn line(s: &SpanRecord, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(s.name);
        out.push_str(&format!(" dur_us={}", s.dur_us));
        for (k, v) in &s.attrs {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
    }
    fn walk(
        s: &SpanRecord,
        depth: usize,
        children: &std::collections::BTreeMap<u64, Vec<&SpanRecord>>,
        out: &mut String,
    ) {
        line(s, depth, out);
        if let Some(kids) = children.get(&s.span_id) {
            for k in kids {
                walk(k, depth + 1, children, out);
            }
        }
    }
    let mut out = String::new();
    for r in &roots {
        walk(r, 0, &children, &mut out);
    }
    out
}

#[cfg(test)]
pub(crate) static TRACE_TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace: u64, span: u64, parent: Option<u64>, name: &'static str) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: span,
            parent_id: parent,
            name,
            start_us: span * 10,
            dur_us: 5,
            tid: 0,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn trace_buffer_drops_oldest_first_at_capacity() {
        let mut b = TraceBuffer::new(4);
        for i in 0..10 {
            b.push(rec(1, i, None, "s"));
        }
        assert_eq!(b.len(), 4);
        assert_eq!(b.dropped(), 6);
        let kept: Vec<u64> = b.spans().map(|s| s.span_id).collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "oldest evicted first");
        // Shrinking also evicts oldest-first, never panics.
        b.set_capacity(2);
        let kept: Vec<u64> = b.spans().map(|s| s.span_id).collect();
        assert_eq!(kept, vec![8, 9]);
        assert_eq!(b.dropped(), 8);
    }

    #[test]
    fn capture_returns_a_connected_tree() {
        let _guard = TRACE_TEST_LOCK.lock();
        let ((), spans) = capture("root", || {
            let _a = crate::span!("child.a");
            {
                let _b = crate::span!("child.b");
            }
        });
        // child.a encloses child.b (guards drop in reverse order), so the
        // tree is root -> child.a -> child.b.
        assert_eq!(spans.len(), 3);
        let root = &spans[0];
        assert_eq!(root.name, "root");
        assert_eq!(root.parent_id, None);
        assert_eq!(root.span_id, root.trace_id);
        let a = spans.iter().find(|s| s.name == "child.a").unwrap();
        let b = spans.iter().find(|s| s.name == "child.b").unwrap();
        assert_eq!(a.parent_id, Some(root.span_id));
        assert_eq!(b.parent_id, Some(a.span_id));
        for s in &spans {
            assert_eq!(s.trace_id, root.trace_id);
            // Interval nesting: child within parent.
            if let Some(p) = s.parent_id {
                let parent = spans.iter().find(|x| x.span_id == p).unwrap();
                assert!(s.start_us >= parent.start_us);
                assert!(s.start_us + s.dur_us <= parent.start_us + parent.dur_us);
            }
        }
    }

    #[test]
    fn capture_detaches_from_an_enclosing_trace() {
        let _guard = TRACE_TEST_LOCK.lock();
        enable(DEFAULT_TRACE_CAPACITY);
        let outer = crate::span!("outer.run");
        let ((), spans) = capture("inner", || {
            let _s = crate::span!("inner.child");
        });
        drop(outer);
        disable();
        assert_eq!(spans.len(), 2, "only the capture's own tree");
        assert!(spans.iter().all(|s| s.trace_id == spans[0].trace_id));
        assert!(spans.iter().any(|s| s.name == "inner.child"));
        clear();
    }

    #[test]
    fn adopt_carries_context_across_threads() {
        let _guard = TRACE_TEST_LOCK.lock();
        let ((), spans) = capture("par.root", || {
            let ctx = current();
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(move || {
                        let _cx = adopt(ctx);
                        let _w = crate::span!("par.worker");
                    });
                }
            });
        });
        let root = spans.iter().find(|s| s.name == "par.root").unwrap();
        let workers: Vec<_> = spans.iter().filter(|s| s.name == "par.worker").collect();
        assert_eq!(workers.len(), 2);
        for w in workers {
            assert_eq!(w.trace_id, root.trace_id);
            assert_eq!(w.parent_id, Some(root.span_id));
        }
    }

    #[test]
    fn slow_threshold_emits_slow_op_with_subtree() {
        let _guard = TRACE_TEST_LOCK.lock();
        let sink = std::sync::Arc::new(crate::MemorySink::new());
        crate::set_sink(sink.clone());
        set_slow_threshold_us(Some(0)); // every root is "slow"
        {
            let _root = crate::span!("slowtest.root");
            let _child = crate::span!("slowtest.child");
        }
        set_slow_threshold_us(None);
        crate::clear_sink();
        let slow: Vec<_> = sink
            .events()
            .into_iter()
            .filter_map(|e| match e {
                crate::Event::SlowOp { name, spans, .. } if name == "slowtest.root" => Some(spans),
                _ => None,
            })
            .collect();
        assert_eq!(slow.len(), 1);
        let spans = &slow[0];
        assert!(spans.iter().any(|s| s.name == "slowtest.root"));
        assert!(spans.iter().any(|s| s.name == "slowtest.child"));
        clear();
    }

    #[test]
    fn chrome_export_shape_is_valid_json() {
        let spans = vec![
            SpanRecord {
                trace_id: 1,
                span_id: 1,
                parent_id: None,
                name: "root",
                start_us: 0,
                dur_us: 100,
                tid: 0,
                attrs: vec![("strategy", "typed_lists".to_string())],
            },
            SpanRecord {
                trace_id: 1,
                span_id: 2,
                parent_id: Some(1),
                name: "child \"q\"",
                start_us: 10,
                dur_us: 20,
                tid: 0,
                attrs: Vec::new(),
            },
        ];
        let text = export_chrome(&spans);
        let json = crate::json::parse(&text).expect("chrome export parses as JSON");
        let arr = json.as_array().expect("top level is an array");
        let xs: Vec<_> = arr
            .iter()
            .filter(|ev| ev.get("ph").and_then(|v| v.as_str()) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 2);
        for ev in &xs {
            assert!(ev.get("ts").and_then(|v| v.as_u64()).is_some());
            assert!(ev.get("dur").and_then(|v| v.as_u64()).is_some());
            assert_eq!(ev.get("pid").and_then(|v| v.as_u64()), Some(1));
            assert!(ev.get("tid").and_then(|v| v.as_u64()).is_some());
            assert!(ev.get("name").and_then(|v| v.as_str()).is_some());
            assert!(ev.get("args").and_then(|v| v.get("span_id")).is_some());
        }
        // The escaped name round-trips.
        assert_eq!(
            xs[1].get("name").and_then(|v| v.as_str()),
            Some("child \"q\"")
        );
        assert_eq!(
            xs[1]
                .get("args")
                .and_then(|a| a.get("parent_id"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
    }

    #[test]
    fn chrome_export_labels_process_and_thread_tracks() {
        let spans = vec![SpanRecord {
            trace_id: 1,
            span_id: 1,
            parent_id: None,
            name: "root",
            start_us: 0,
            dur_us: 10,
            tid: 7_777_777, // never allocated: falls back to thread-<tid>
            attrs: Vec::new(),
        }];
        let text = export_chrome(&spans);
        let json = crate::json::parse(&text).expect("parses");
        let arr = json.as_array().unwrap();
        let metas: Vec<_> = arr
            .iter()
            .filter(|ev| ev.get("ph").and_then(|v| v.as_str()) == Some("M"))
            .collect();
        // One process_name plus one thread_name per distinct tid — and
        // metadata precedes the span events.
        assert_eq!(metas.len(), 2, "{text}");
        assert_eq!(
            arr[0].get("name").and_then(|v| v.as_str()),
            Some("process_name")
        );
        assert_eq!(
            arr[0]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(|v| v.as_str()),
            Some("dbpl")
        );
        let thread = metas
            .iter()
            .find(|ev| ev.get("name").and_then(|v| v.as_str()) == Some("thread_name"))
            .expect("thread_name event");
        assert_eq!(thread.get("tid").and_then(|v| v.as_u64()), Some(7_777_777));
        assert_eq!(
            thread
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(|v| v.as_str()),
            Some("thread-7777777")
        );
    }

    #[test]
    fn named_threads_register_their_track_names() {
        std::thread::Builder::new()
            .name("dbpl-track-test".to_string())
            .spawn(|| {
                // Force TID allocation on this named thread by capturing
                // a span, then check the registry saw the OS name.
                let (t, _) = capture("track-test", super::tid);
                assert_eq!(thread_name(t).as_deref(), Some("dbpl-track-test"));
                let spans = vec![SpanRecord {
                    trace_id: 1,
                    span_id: 1,
                    parent_id: None,
                    name: "root",
                    start_us: 0,
                    dur_us: 1,
                    tid: t,
                    attrs: Vec::new(),
                }];
                assert!(export_chrome(&spans).contains("dbpl-track-test"));
            })
            .unwrap()
            .join()
            .unwrap();
    }

    #[test]
    fn chrome_export_with_counters_appends_histogram_tracks() {
        let spans = vec![SpanRecord {
            trace_id: 1,
            span_id: 1,
            parent_id: None,
            name: "root",
            start_us: 5,
            dur_us: 100,
            tid: 0,
            attrs: Vec::new(),
        }];
        let mut stats = crate::StatsSnapshot::default();
        stats.histograms.insert(
            "span.get".to_string(),
            crate::HistogramSnapshot {
                buckets: vec![3],
                count: 3,
                sum_us: 120,
            },
        );
        // Non-span histograms stay out of the trace file.
        stats.histograms.insert(
            "other.metric".to_string(),
            crate::HistogramSnapshot {
                buckets: vec![1],
                count: 1,
                sum_us: 1,
            },
        );
        let text = export_chrome_with_counters(&spans, &stats);
        let json = crate::json::parse(&text).expect("counter export parses as JSON");
        let arr = json.as_array().expect("top level is an array");
        let counters: Vec<_> = arr
            .iter()
            .filter(|ev| ev.get("ph").and_then(|v| v.as_str()) == Some("C"))
            .collect();
        assert_eq!(counters.len(), 1, "{text}");
        assert!(arr
            .iter()
            .any(|ev| ev.get("ph").and_then(|v| v.as_str()) == Some("X")));
        let c = counters[0];
        assert_eq!(c.get("ph").and_then(|v| v.as_str()), Some("C"));
        assert_eq!(c.get("name").and_then(|v| v.as_str()), Some("span.get"));
        // Counter sample sits at the end of the captured window.
        assert_eq!(c.get("ts").and_then(|v| v.as_u64()), Some(105));
        assert_eq!(
            c.get("args")
                .and_then(|a| a.get("count"))
                .and_then(|v| v.as_u64()),
            Some(3)
        );
        assert_eq!(
            c.get("args")
                .and_then(|a| a.get("sum_us"))
                .and_then(|v| v.as_u64()),
            Some(120)
        );
    }

    #[test]
    fn render_tree_indents_and_tolerates_orphans() {
        let spans = vec![
            SpanRecord {
                trace_id: 1,
                span_id: 1,
                parent_id: None,
                name: "get",
                start_us: 0,
                dur_us: 50,
                tid: 0,
                attrs: vec![("rows_out", "3".to_string())],
            },
            rec(1, 2, Some(1), "get.seal"),
            // Parent 99 was evicted from the ring: still rendered, as a root.
            rec(1, 3, Some(99), "orphan"),
        ];
        let tree = render_tree(&spans);
        assert!(tree.contains("get dur_us=50 rows_out=3\n"));
        assert!(tree.contains("\n  get.seal dur_us=5\n"));
        assert!(tree.contains("\norphan dur_us=5\n"));
    }

    #[test]
    fn span_record_json_shape() {
        let mut r = rec(1, 2, Some(1), "s");
        r.attrs.push(("rows", "7".to_string()));
        assert_eq!(
            r.to_json(),
            "{\"name\":\"s\",\"trace_id\":1,\"span_id\":2,\"parent_id\":1,\
             \"start_us\":20,\"dur_us\":5,\"tid\":0,\"attrs\":{\"rows\":\"7\"}}"
        );
        let root = rec(1, 1, None, "r");
        assert!(root.to_json().contains("\"parent_id\":null"));
    }
}
