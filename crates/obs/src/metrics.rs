//! Named relaxed-atomic counters, gauges, and fixed-bucket latency
//! histograms.
//!
//! # The delta rule
//!
//! [`StatsSnapshot::delta_since`] treats the three metric kinds
//! differently, and every consumer (the `report` bench phases, the
//! [`crate::timeline`] flight recorder, tests measuring per-run
//! activity) relies on the distinction:
//!
//! * **Counters** are monotone totals: the delta is the subtraction
//!   `self - earlier`, clamped at zero.
//! * **Histograms** are diffed bucket-wise (and count/sum-wise), also
//!   clamped — a histogram delta is the observations of the interval.
//! * **Gauges** are instantaneous levels (queue depth, live snapshots,
//!   open sessions). Subtracting two levels yields a meaningless
//!   number, so the "delta" carries `self`'s current level unchanged:
//!   a gauge answers "where is it now", never "how much did it move".

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A monotonically increasing event counter. All operations use relaxed
/// ordering: counters are statistics, not synchronization — concurrent
/// increments are lossless but establish no happens-before edges.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero (used by benchmarks and tests that measure deltas).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// An instantaneous level — queue depth, live snapshots, open sessions.
/// Unlike a [`Counter`] it moves both ways; like one, it is pure relaxed
/// atomics and establishes no ordering.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Add `n` (which may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the level.
    #[inline]
    pub fn set(&self, n: i64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Upper bounds (inclusive, in microseconds) of the histogram buckets;
/// one extra overflow bucket catches everything above the last bound.
pub const BUCKET_BOUNDS_US: [u64; 12] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 1_024, 8_192, 65_536];

/// A fixed-bucket latency histogram over [`BUCKET_BOUNDS_US`], with a
/// running count and sum. Like [`Counter`], purely relaxed atomics.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: Default::default(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation of `us` microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum_us: self.sum_us(),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_us.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of one histogram's state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; the last entry is the overflow
    /// bucket above the final [`BUCKET_BOUNDS_US`] bound.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations in microseconds.
    pub sum_us: u64,
}

impl HistogramSnapshot {
    /// Mean observation in microseconds, `0` when empty. Exact up to
    /// integer division — derived from the recorded sum, not from the
    /// bucket midpoints — so it stays meaningful on `delta_since`
    /// windows too (windowed sum over windowed count).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }
}

/// A registry of named counters and histograms. Handles are `Arc`s:
/// look a metric up once (hot paths cache the handle in a `OnceLock`)
/// and increment it forever after without touching the registry lock.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry (tests; production uses [`global()`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(self.counters.write().entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(self.gauges.write().entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(self.histograms.write().entry(name.to_string()).or_default())
    }

    /// A point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Zero every metric **in place** — cached `Arc` handles stay valid,
    /// so this is safe to call between benchmark phases.
    pub fn reset(&self) {
        for c in self.counters.read().values() {
            c.reset();
        }
        for g in self.gauges.read().values() {
            g.set(0);
        }
        for h in self.histograms.read().values() {
            h.reset();
        }
    }
}

/// A serializable point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name (instantaneous, not monotone).
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl StatsSnapshot {
    /// The value of counter `name` in this snapshot (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The level of gauge `name` in this snapshot (0 if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The state of histogram `name` in this snapshot, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// The difference `self - earlier` as another snapshot: per-counter
    /// values clamped at zero, histograms diffed bucket-wise. Gauges are
    /// instantaneous levels, not monotone totals, so the "delta" carries
    /// `self`'s current levels unchanged. Only names present in `self`
    /// are reported.
    pub fn delta_since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let old = earlier.histograms.get(k);
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| {
                        b.saturating_sub(old.and_then(|o| o.buckets.get(i)).copied().unwrap_or(0))
                    })
                    .collect();
                let diffed = HistogramSnapshot {
                    buckets,
                    count: h.count.saturating_sub(old.map_or(0, |o| o.count)),
                    sum_us: h.sum_us.saturating_sub(old.map_or(0, |o| o.sum_us)),
                };
                (k.clone(), diffed)
            })
            .collect();
        StatsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Render as a single-line JSON object:
    /// `{"counters":{...},"histograms":{"name":{"count":n,"sum_us":n,"buckets":[...]}},"gauges":{...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", crate::json_escape(k), v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum_us\":{},\"buckets\":[{}]}}",
                crate::json_escape(k),
                h.count,
                h.sum_us,
                h.buckets
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", crate::json_escape(k), v));
        }
        out.push_str("}}");
        out
    }
}

/// The process-wide registry every dbpl crate reports into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn registry_interns_by_name() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        assert_eq!(b.get(), 1, "same name returns the same counter");
        assert_eq!(r.counter("y").get(), 0);
    }

    #[test]
    fn gauge_moves_both_ways_and_snapshots() {
        let r = MetricsRegistry::new();
        let g = r.gauge("depth");
        g.inc();
        g.add(4);
        g.dec();
        assert_eq!(g.get(), 4);
        g.add(-10);
        assert_eq!(g.get(), -6, "gauges may go negative");
        g.set(2);
        let snap = r.snapshot();
        assert_eq!(snap.gauge("depth"), 2);
        assert_eq!(snap.gauge("absent"), 0);
        // Deltas carry the instantaneous level, not a difference.
        let later = r.snapshot();
        assert_eq!(later.delta_since(&snap).gauge("depth"), 2);
        assert!(later.to_json().contains("\"gauges\":{\"depth\":2}"));
        r.reset();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn regression_gauge_delta_is_last_value_not_subtraction() {
        // The delta rule (module docs): counters subtract, gauges carry
        // the instantaneous level. A subtracted gauge would report 2-5
        // = -3 here and poison every timeline sample.
        let r = MetricsRegistry::new();
        r.gauge("depth").set(5);
        r.counter("hits").add(5);
        let before = r.snapshot();
        r.gauge("depth").set(2);
        r.counter("hits").add(2);
        let d = r.snapshot().delta_since(&before);
        assert_eq!(d.gauge("depth"), 2, "gauge delta is the current level");
        assert_eq!(d.counter("hits"), 2, "counter delta is the subtraction");
        // A gauge that fell below its earlier level must not clamp or
        // wrap either.
        r.gauge("depth").set(-4);
        assert_eq!(r.snapshot().delta_since(&before).gauge("depth"), -4);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let h = Histogram::new();
        h.record_us(0); // bucket 0 (<=1)
        h.record_us(1); // bucket 0
        h.record_us(3); // bucket 2 (<=4)
        h.record_us(1_000_000); // overflow
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum_us, 1_000_004);
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(*s.buckets.last().unwrap(), 1);
        assert_eq!(s.buckets.len(), BUCKET_BOUNDS_US.len() + 1);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        // The ParScan shape: scoped worker threads all bumping the same
        // counter; no increment may be lost.
        let r = MetricsRegistry::new();
        let c = r.counter("par");
        const THREADS: usize = 8;
        const PER: u64 = 10_000;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..PER {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), THREADS as u64 * PER);
    }

    #[test]
    fn snapshot_delta_and_json() {
        let r = MetricsRegistry::new();
        r.counter("a").add(3);
        let before = r.snapshot();
        r.counter("a").add(2);
        r.counter("b").inc();
        r.histogram("h").record_us(7);
        let after = r.snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.counter("a"), 2);
        assert_eq!(d.counter("b"), 1);
        assert_eq!(d.histograms["h"].count, 1);
        let json = after.to_json();
        assert!(json.starts_with("{\"counters\":{\"a\":5,\"b\":1}"));
        assert!(json.contains("\"h\":{\"count\":1,\"sum_us\":7,\"buckets\":[0,0,0,1,"));
    }

    #[test]
    fn histogram_sum_follows_the_delta_rule() {
        // Like counters, a histogram's count/sum/buckets subtract in
        // delta_since — a windowed snapshot must report exactly the
        // window's observations, so windowed means stay honest.
        let r = MetricsRegistry::new();
        let h = r.histogram("h");
        h.record_us(10);
        h.record_us(100);
        let before = r.snapshot();
        h.record_us(1_000);
        let after = r.snapshot();
        let d = after.delta_since(&before);
        let w = &d.histograms["h"];
        assert_eq!(w.count, 1);
        assert_eq!(w.sum_us, 1_000);
        assert_eq!(
            w.buckets.iter().sum::<u64>(),
            w.count,
            "bucket diffs conserve the windowed count"
        );
        assert_eq!(w.mean_us(), 1_000, "windowed mean = windowed sum/count");
        assert_eq!(after.histograms["h"].mean_us(), 370, "1110/3");
        assert_eq!(HistogramSnapshot::default().mean_us(), 0, "empty is 0");
        // The recorded sum — not a bucket-midpoint estimate — is what
        // both JSON forms carry.
        assert!(after
            .to_json()
            .contains("\"h\":{\"count\":3,\"sum_us\":1110,"));
    }

    #[test]
    fn reset_keeps_cached_handles_valid() {
        let r = MetricsRegistry::new();
        let c = r.counter("k");
        c.add(9);
        r.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(r.counter("k").get(), 1);
    }
}
