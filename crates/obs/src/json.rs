//! A minimal JSON reader for validating the hand-rolled JSON this
//! workspace *writes* (stats snapshots, event JSONL, Chrome traces).
//! The workspace deliberately carries no serde; this is the read-side
//! complement of [`crate::json_escape`] — small, strict enough for
//! round-trip tests and the CI trace checker, and not a general-purpose
//! parser (no `\u` surrogate pairs, numbers as `f64`).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order not preserved).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                members.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0c),
                    b'u' => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let c = char::from_u32(hex)
                            .ok_or_else(|| format!("bad \\u codepoint at byte {}", *pos))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape '\\{}'", *other as char)),
                }
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(
            parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::Str("a\n\"bA".into())
        );
        let arr = parse("[1, [2], {}]").unwrap();
        assert_eq!(arr.as_array().unwrap().len(), 3);
        let obj = parse("{\"k\": 7, \"s\": \"v\"}").unwrap();
        assert_eq!(obj.get("k").and_then(|v| v.as_u64()), Some(7));
        assert_eq!(obj.get("s").and_then(|v| v.as_str()), Some("v"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn round_trips_this_workspaces_writers() {
        let snap = crate::global().snapshot();
        parse(&snap.to_json()).expect("StatsSnapshot::to_json parses");
        let event = crate::Event::Quarantine {
            handle: "H\"x\"".into(),
            reason: "line\nbreak".into(),
        };
        let parsed = parse(&event.to_jsonl()).expect("Event::to_jsonl parses");
        assert_eq!(
            parsed.get("handle").and_then(|v| v.as_str()),
            Some("H\"x\"")
        );
    }
}
