//! Lightweight span timing: a drop guard that records elapsed wall time
//! into a latency histogram.

use crate::metrics::Histogram;
use std::sync::Arc;
use std::time::Instant;

/// A timing guard. Created by [`SpanGuard::enter`] (or the [`span!`]
/// macro); records the elapsed microseconds into the `span.<name>`
/// histogram of the global registry when dropped.
///
/// [`span!`]: crate::span!
#[derive(Debug)]
pub struct SpanGuard {
    hist: Arc<Histogram>,
    start: Instant,
}

impl SpanGuard {
    /// Start timing the span `name` against the global registry.
    pub fn enter(name: &str) -> SpanGuard {
        SpanGuard {
            hist: crate::global().histogram(&format!("span.{name}")),
            start: Instant::now(),
        }
    }

    /// Start timing against an explicit histogram (tests).
    pub fn with_histogram(hist: Arc<Histogram>) -> SpanGuard {
        SpanGuard {
            hist,
            start: Instant::now(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.hist.record_us(self.start.elapsed().as_micros() as u64);
    }
}

/// Time the enclosing scope: `let _span = span!("join.partition");`
/// records into the `span.join.partition` histogram when the guard
/// drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let h = Arc::new(Histogram::new());
        {
            let _g = SpanGuard::with_histogram(Arc::clone(&h));
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn span_macro_hits_global_histogram() {
        let name = "obs.test.span_macro";
        let h = crate::global().histogram(&format!("span.{name}"));
        let before = h.count();
        {
            let _g = span!(name);
        }
        assert_eq!(h.count(), before + 1);
    }
}
