//! Lightweight span timing: a drop guard that records elapsed wall time
//! into a latency histogram — and, while tracing is active, a node in
//! the current trace tree (see [`crate::trace`]).

use crate::metrics::Histogram;
use crate::trace;
use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A timing guard. Created by the [`span!`] macro (or
/// [`SpanGuard::enter`]); when dropped it records the elapsed
/// microseconds into the `span.<name>` histogram of the global registry
/// and, if tracing is active, pushes a completed
/// [`SpanRecord`](crate::trace::SpanRecord) carrying this span's place
/// in the trace tree and any attributes attached with
/// [`SpanGuard::set_attr`].
///
/// [`span!`]: crate::span!
#[derive(Debug)]
pub struct SpanGuard {
    hist: Option<Arc<Histogram>>,
    start: Instant,
    slot: Option<trace::TraceSlot>,
}

impl SpanGuard {
    /// Start timing the span `name`. This form resolves the histogram
    /// through the registry **on every call** (one allocation + map
    /// lookup); hot paths should use the [`span!`] macro, which caches
    /// the handle per call site.
    pub fn enter(name: &'static str) -> SpanGuard {
        SpanGuard {
            hist: Some(crate::global().histogram(&format!("span.{name}"))),
            start: Instant::now(),
            slot: trace::open_slot(name),
        }
    }

    /// Start timing with a per-call-site cached histogram handle: the
    /// registry lookup (and its `format!` allocation) happens once per
    /// site, ever. With tracing inactive the entire entry/exit cost is
    /// two atomic loads, a clock read, and one histogram record — **no
    /// allocation** (asserted by `tests/span_alloc.rs`).
    pub fn enter_cached(name: &'static str, site: &'static OnceLock<Arc<Histogram>>) -> SpanGuard {
        SpanGuard {
            hist: Some(Arc::clone(site.get_or_init(|| {
                crate::global().histogram(&format!("span.{name}"))
            }))),
            start: Instant::now(),
            slot: trace::open_slot(name),
        }
    }

    /// Start timing against an explicit histogram (tests). Does not
    /// participate in tracing.
    pub fn with_histogram(hist: Arc<Histogram>) -> SpanGuard {
        SpanGuard {
            hist: Some(hist),
            start: Instant::now(),
            slot: None,
        }
    }

    /// Attach a `key=value` attribute to this span's trace record (rows,
    /// strategy, bytes, …). A no-op — `value` is never formatted — while
    /// tracing is inactive, so instrumented paths stay allocation-free.
    pub fn set_attr(&mut self, key: &'static str, value: impl fmt::Display) {
        if let Some(slot) = self.slot.as_mut() {
            slot.attrs.push((key, value.to_string()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let us = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        if let Some(h) = &self.hist {
            h.record_us(us);
        }
        if let Some(slot) = self.slot.take() {
            trace::close_slot(slot);
        }
    }
}

/// Time the enclosing scope: `let _span = span!("join.partition");`
/// records into the `span.join.partition` histogram when the guard
/// drops — through a handle cached at this call site, so re-entering
/// the span never allocates. Bind mutably (`let mut sp = span!(…)`) to
/// attach trace attributes with [`SpanGuard::set_attr`]. The name must
/// be a string literal (one histogram per call site).
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static SPAN_SITE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        $crate::SpanGuard::enter_cached($name, &SPAN_SITE)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let h = Arc::new(Histogram::new());
        {
            let _g = SpanGuard::with_histogram(Arc::clone(&h));
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn span_macro_hits_global_histogram() {
        let name = "obs.test.span_macro";
        let h = crate::global().histogram(&format!("span.{name}"));
        let before = h.count();
        {
            let _g = span!(name);
        }
        assert_eq!(h.count(), before + 1);
    }

    #[test]
    fn span_macro_caches_the_handle_per_site() {
        let h = crate::global().histogram("span.obs.test.cached_site");
        let before = h.count();
        for _ in 0..3 {
            // One call site, three entries: all land in the same histogram
            // through the site-local OnceLock.
            let _g = span!("obs.test.cached_site");
        }
        assert_eq!(h.count(), before + 3);
    }

    #[test]
    fn attrs_are_dropped_when_tracing_is_inactive() {
        let _guard = crate::trace::TRACE_TEST_LOCK.lock();
        assert!(!crate::trace::is_active());
        let mut sp = span!("obs.test.no_trace");
        sp.set_attr("rows", 3);
        drop(sp);
        // Nothing buffered: the attr was discarded without formatting.
        assert!(crate::trace::buffered()
            .iter()
            .all(|s| s.name != "obs.test.no_trace"));
    }
}
