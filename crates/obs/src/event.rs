//! Structured events and the pluggable sink they stream through.

use crate::json_escape;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// A structured observability event. The JSONL rendering of every
/// variant is a stable, golden-tested schema: the `event` field names
/// the variant in snake_case, and the remaining fields are fixed per
/// variant — sinks may rely on field names and types not drifting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A transaction frame opened (implicit per-program or explicit
    /// `begin`).
    TxnBegin {
        /// `true` for an explicit `begin`, `false` for the implicit
        /// per-program frame.
        explicit: bool,
    },
    /// A transaction committed durably.
    TxnCommit {
        /// The store's monotonically increasing transaction id.
        txn_id: u64,
        /// Number of extern handles written or removed by the commit.
        externs: u64,
        /// Whether the commit also carried intrinsic-store records.
        intrinsic: bool,
    },
    /// A transaction frame rolled back (explicit `abort`, a failing
    /// program, or a panic).
    TxnAbort {
        /// Why the frame was abandoned.
        reason: String,
    },
    /// A commit passed its durability point but failed while applying
    /// effects; the intent record will be rolled forward.
    TxnInDoubt {
        /// The in-doubt transaction id.
        txn_id: u64,
        /// The apply-phase error.
        cause: String,
    },
    /// A pending intent was rolled forward to completion.
    TxnRecovered {
        /// The recovered transaction id.
        txn_id: u64,
    },
    /// A damaged `.dyn` unit (or undecodable store position) was fenced
    /// off rather than aborting the session.
    Quarantine {
        /// The handle or position that was quarantined.
        handle: String,
        /// The corruption error that triggered it.
        reason: String,
    },
    /// A salvage-mode open skipped undecodable data and continued.
    Salvage {
        /// Units successfully loaded.
        loaded: u64,
        /// Units skipped as undecodable.
        skipped: u64,
    },
    /// A transient I/O error was retried.
    Retry {
        /// The operation being retried.
        op: String,
        /// 1-based attempt number that failed.
        attempt: u64,
    },
    /// The simulated VFS injected a fault (tests and crash sweeps).
    FaultInjected {
        /// The faulted operation.
        op: String,
        /// The fault kind (`"transient"` or `"crash"`).
        kind: String,
    },
    /// A scrub pass over a replicating store finished (see
    /// `ReplicatingStore::scrub` in `dbpl-persist`).
    ScrubReport {
        /// Units examined.
        scanned: u64,
        /// Units whose checksum and decode both passed.
        verified: u64,
        /// Units found corrupt and left quarantined (repair failed or no
        /// replica was available).
        corrupt: u64,
        /// Units found corrupt and rewritten from a healthy replica.
        repaired: u64,
    },
    /// An engine shed load: a commit was rejected (or timed out waiting)
    /// at the admission gate because the write path was at capacity.
    Overload {
        /// Commit-queue depth observed at the rejection.
        depth: u64,
        /// Which gate rejected: `"queue_full"`, `"inflight_full"`,
        /// `"session_cap"`, or `"admission_timeout"`.
        gate: String,
    },
    /// A session entered or left degraded (read-only) mode, e.g. on
    /// disk-full during commit and again when space returns.
    HealthChanged {
        /// `true` when entering degraded mode, `false` on recovery.
        degraded: bool,
        /// Why the health state changed.
        reason: String,
    },
    /// A service-level objective evaluated by the flight recorder
    /// ([`crate::timeline`]) began failing: the windowed percentile
    /// estimate crossed its threshold. The SLO engine's hysteresis
    /// guarantees one event per sustained violation (no flapping).
    SloViolation {
        /// The histogram the objective watches (e.g.
        /// `server.queue_wait_us`).
        metric: String,
        /// The objective's quantile label (e.g. `p99`).
        quantile: String,
        /// The windowed quantile estimate, in microseconds.
        observed_us: u64,
        /// The objective's threshold, in microseconds.
        threshold_us: u64,
        /// Burn rate ×100: the share of window observations over the
        /// threshold relative to the error budget `1 - q`; 100 means
        /// burning the budget exactly, 1000 means 10x over.
        burn_rate_pct: u64,
        /// Window start, microseconds since recorder start.
        window_start_us: u64,
        /// Window end, microseconds since recorder start.
        window_end_us: u64,
        /// The session label with the most attributed commit attempts
        /// in the window (`""` when no labeled session was active).
        offender: String,
    },
    /// A root span exceeded the slow-op threshold
    /// ([`crate::trace::set_slow_threshold_us`]); carries the whole
    /// subtree so the log alone answers "where did it spend its time".
    SlowOp {
        /// The root span's name (e.g. `run`, `get`, `txn.commit`).
        name: String,
        /// The root span's duration in microseconds.
        dur_us: u64,
        /// The completed spans of the trace, root included, parents
        /// before children.
        spans: Vec<crate::trace::SpanRecord>,
    },
}

impl Event {
    /// The snake_case variant name used as the JSONL `event` field and
    /// the `events.<kind>` counter suffix.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::TxnBegin { .. } => "txn_begin",
            Event::TxnCommit { .. } => "txn_commit",
            Event::TxnAbort { .. } => "txn_abort",
            Event::TxnInDoubt { .. } => "txn_in_doubt",
            Event::TxnRecovered { .. } => "txn_recovered",
            Event::Quarantine { .. } => "quarantine",
            Event::Salvage { .. } => "salvage",
            Event::Retry { .. } => "retry",
            Event::FaultInjected { .. } => "fault_injected",
            Event::ScrubReport { .. } => "scrub_report",
            Event::Overload { .. } => "overload",
            Event::HealthChanged { .. } => "health_changed",
            Event::SloViolation { .. } => "slo_violation",
            Event::SlowOp { .. } => "slow_op",
        }
    }

    /// Render as one JSONL line (no trailing newline). Field order is
    /// fixed: `event` first, then the variant's fields in declaration
    /// order.
    pub fn to_jsonl(&self) -> String {
        let kind = self.kind();
        match self {
            Event::TxnBegin { explicit } => {
                format!("{{\"event\":\"{kind}\",\"explicit\":{explicit}}}")
            }
            Event::TxnCommit {
                txn_id,
                externs,
                intrinsic,
            } => format!(
                "{{\"event\":\"{kind}\",\"txn_id\":{txn_id},\"externs\":{externs},\"intrinsic\":{intrinsic}}}"
            ),
            Event::TxnAbort { reason } => format!(
                "{{\"event\":\"{kind}\",\"reason\":\"{}\"}}",
                json_escape(reason)
            ),
            Event::TxnInDoubt { txn_id, cause } => format!(
                "{{\"event\":\"{kind}\",\"txn_id\":{txn_id},\"cause\":\"{}\"}}",
                json_escape(cause)
            ),
            Event::TxnRecovered { txn_id } => {
                format!("{{\"event\":\"{kind}\",\"txn_id\":{txn_id}}}")
            }
            Event::Quarantine { handle, reason } => format!(
                "{{\"event\":\"{kind}\",\"handle\":\"{}\",\"reason\":\"{}\"}}",
                json_escape(handle),
                json_escape(reason)
            ),
            Event::Salvage { loaded, skipped } => format!(
                "{{\"event\":\"{kind}\",\"loaded\":{loaded},\"skipped\":{skipped}}}"
            ),
            Event::Retry { op, attempt } => format!(
                "{{\"event\":\"{kind}\",\"op\":\"{}\",\"attempt\":{attempt}}}",
                json_escape(op)
            ),
            Event::FaultInjected { op, kind: fk } => format!(
                "{{\"event\":\"{kind}\",\"op\":\"{}\",\"kind\":\"{}\"}}",
                json_escape(op),
                json_escape(fk)
            ),
            Event::ScrubReport {
                scanned,
                verified,
                corrupt,
                repaired,
            } => format!(
                "{{\"event\":\"{kind}\",\"scanned\":{scanned},\"verified\":{verified},\"corrupt\":{corrupt},\"repaired\":{repaired}}}"
            ),
            Event::Overload { depth, gate } => format!(
                "{{\"event\":\"{kind}\",\"depth\":{depth},\"gate\":\"{}\"}}",
                json_escape(gate)
            ),
            Event::HealthChanged { degraded, reason } => format!(
                "{{\"event\":\"{kind}\",\"degraded\":{degraded},\"reason\":\"{}\"}}",
                json_escape(reason)
            ),
            Event::SloViolation {
                metric,
                quantile,
                observed_us,
                threshold_us,
                burn_rate_pct,
                window_start_us,
                window_end_us,
                offender,
            } => format!(
                "{{\"event\":\"{kind}\",\"metric\":\"{}\",\"quantile\":\"{}\",\"observed_us\":{observed_us},\"threshold_us\":{threshold_us},\"burn_rate_pct\":{burn_rate_pct},\"window_start_us\":{window_start_us},\"window_end_us\":{window_end_us},\"offender\":\"{}\"}}",
                json_escape(metric),
                json_escape(quantile),
                json_escape(offender)
            ),
            Event::SlowOp {
                name,
                dur_us,
                spans,
            } => format!(
                "{{\"event\":\"{kind}\",\"name\":\"{}\",\"dur_us\":{dur_us},\"spans\":[{}]}}",
                json_escape(name),
                spans
                    .iter()
                    .map(|s| s.to_json())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        }
    }
}

/// Where emitted events go. Implementations must be cheap and must not
/// call back into [`emit`].
pub trait EventSink: Send + Sync {
    /// Receive one event.
    fn emit(&self, event: &Event);
}

/// An in-memory sink that records every event it receives (tests,
/// examples).
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything received so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// Drop everything received so far.
    pub fn clear(&self) {
        self.events.lock().unwrap().clear();
    }
}

impl EventSink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

static SINK_ATTACHED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn EventSink>>> = RwLock::new(None);

/// Attach the process-wide event sink (replacing any previous one).
pub fn set_sink(sink: Arc<dyn EventSink>) {
    *SINK.write() = Some(sink);
    SINK_ATTACHED.store(true, Ordering::Release);
}

/// Detach the process-wide event sink.
pub fn clear_sink() {
    SINK_ATTACHED.store(false, Ordering::Release);
    *SINK.write() = None;
}

/// Whether a sink is currently attached (fast relaxed load).
pub fn sink_attached() -> bool {
    SINK_ATTACHED.load(Ordering::Relaxed)
}

/// Emit one event: always bumps the `events.<kind>` counter in the
/// [`global`](crate::global) registry, and forwards to the attached
/// sink if there is one. With no sink attached this is one relaxed
/// atomic load plus one counter increment.
pub fn emit(event: Event) {
    crate::global()
        .counter(&format!("events.{}", event.kind()))
        .inc();
    if !SINK_ATTACHED.load(Ordering::Acquire) {
        return;
    }
    if let Some(sink) = SINK.read().as_ref() {
        sink.emit(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-wide sink (the test
    /// binary runs tests on parallel threads).
    static SINK_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn golden_jsonl_schema() {
        // These exact strings are the contract with external sinks; a
        // failure here means the event schema drifted.
        let cases: Vec<(Event, &str)> = vec![
            (
                Event::TxnBegin { explicit: true },
                r#"{"event":"txn_begin","explicit":true}"#,
            ),
            (
                Event::TxnCommit {
                    txn_id: 7,
                    externs: 2,
                    intrinsic: false,
                },
                r#"{"event":"txn_commit","txn_id":7,"externs":2,"intrinsic":false}"#,
            ),
            (
                Event::TxnAbort {
                    reason: "panic: \"boom\"".into(),
                },
                r#"{"event":"txn_abort","reason":"panic: \"boom\""}"#,
            ),
            (
                Event::TxnInDoubt {
                    txn_id: 9,
                    cause: "apply failed".into(),
                },
                r#"{"event":"txn_in_doubt","txn_id":9,"cause":"apply failed"}"#,
            ),
            (
                Event::TxnRecovered { txn_id: 9 },
                r#"{"event":"txn_recovered","txn_id":9}"#,
            ),
            (
                Event::Quarantine {
                    handle: "H".into(),
                    reason: "checksum mismatch".into(),
                },
                r#"{"event":"quarantine","handle":"H","reason":"checksum mismatch"}"#,
            ),
            (
                Event::Salvage {
                    loaded: 3,
                    skipped: 1,
                },
                r#"{"event":"salvage","loaded":3,"skipped":1}"#,
            ),
            (
                Event::Retry {
                    op: "write_intent".into(),
                    attempt: 2,
                },
                r#"{"event":"retry","op":"write_intent","attempt":2}"#,
            ),
            (
                Event::FaultInjected {
                    op: "sync_file".into(),
                    kind: "transient".into(),
                },
                r#"{"event":"fault_injected","op":"sync_file","kind":"transient"}"#,
            ),
            (
                Event::ScrubReport {
                    scanned: 10,
                    verified: 8,
                    corrupt: 1,
                    repaired: 1,
                },
                r#"{"event":"scrub_report","scanned":10,"verified":8,"corrupt":1,"repaired":1}"#,
            ),
            (
                Event::Overload {
                    depth: 256,
                    gate: "queue_full".into(),
                },
                r#"{"event":"overload","depth":256,"gate":"queue_full"}"#,
            ),
            (
                Event::HealthChanged {
                    degraded: true,
                    reason: "disk full".into(),
                },
                r#"{"event":"health_changed","degraded":true,"reason":"disk full"}"#,
            ),
            (
                Event::SloViolation {
                    metric: "server.queue_wait_us".into(),
                    quantile: "p99".into(),
                    observed_us: 8192,
                    threshold_us: 1000,
                    burn_rate_pct: 4200,
                    window_start_us: 100_000,
                    window_end_us: 300_000,
                    offender: "load-3".into(),
                },
                r#"{"event":"slo_violation","metric":"server.queue_wait_us","quantile":"p99","observed_us":8192,"threshold_us":1000,"burn_rate_pct":4200,"window_start_us":100000,"window_end_us":300000,"offender":"load-3"}"#,
            ),
            (
                Event::SlowOp {
                    name: "run".into(),
                    dur_us: 1500,
                    spans: vec![crate::trace::SpanRecord {
                        trace_id: 4,
                        span_id: 4,
                        parent_id: None,
                        name: "run",
                        start_us: 10,
                        dur_us: 1500,
                        tid: 0,
                        attrs: vec![("statements", "2".to_string())],
                    }],
                },
                r#"{"event":"slow_op","name":"run","dur_us":1500,"spans":[{"name":"run","trace_id":4,"span_id":4,"parent_id":null,"start_us":10,"dur_us":1500,"tid":0,"attrs":{"statements":"2"}}]}"#,
            ),
        ];
        for (event, expected) in cases {
            assert_eq!(event.to_jsonl(), expected, "schema drift for {event:?}");
            let kind = event.kind();
            assert!(
                expected.contains(&format!("\"event\":\"{kind}\"")),
                "kind/jsonl mismatch for {event:?}"
            );
        }
    }

    #[test]
    fn emit_reaches_sink_and_counts() {
        let _guard = SINK_TEST_LOCK.lock().unwrap();
        let sink = Arc::new(MemorySink::new());
        set_sink(sink.clone());
        let before = crate::global().counter("events.salvage").get();
        emit(Event::Salvage {
            loaded: 1,
            skipped: 0,
        });
        clear_sink();
        assert!(!sink_attached());
        let got = sink.events();
        assert!(got.contains(&Event::Salvage {
            loaded: 1,
            skipped: 0
        }));
        assert!(crate::global().counter("events.salvage").get() > before);
        // After clearing, emits still count but do not reach the sink.
        sink.clear();
        emit(Event::Salvage {
            loaded: 2,
            skipped: 0,
        });
        assert!(sink.events().is_empty());
    }
}
