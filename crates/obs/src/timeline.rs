//! The flight recorder: a sampled timeline of the whole metrics
//! registry, bucket-based percentile estimation, and a declarative SLO
//! engine with burn-rate alerts.
//!
//! A [`Recorder`] runs a background sampler thread that snapshots
//! [`global()`] every `interval` into a bounded drop-oldest ring. Each
//! [`TimelineSample`] carries both the cumulative registry state and
//! the per-interval delta ([`StatsSnapshot::delta_since`]), so the
//! exported timeline can answer *when* a metric went bad, not just that
//! it is bad now. On top of the ring, [`Slo`] objectives (parsed from a
//! tiny grammar, e.g. `server.queue_wait_us p99 < 5ms over 10s`) are
//! evaluated at every sample; a sustained violation emits exactly one
//! [`Event::SloViolation`] — hysteresis (`clear_after` consecutive
//! healthy evaluations before re-arming) keeps alerts from flapping,
//! the same enter/exit shape as the engine's degraded-health handling.
//!
//! Exports: [`Timeline::to_jsonl`] (schema-tagged JSONL validated by
//! the `timeline_check` tool), [`Timeline::to_chrome`] (`ph:"C"`
//! counter tracks for chrome://tracing / Perfetto, loadable next to the
//! span export), and [`Timeline::render`] (the ASCII view behind the
//! `timeline(db)` MiniDBPL builtin).

use crate::metrics::{global, HistogramSnapshot, StatsSnapshot, BUCKET_BOUNDS_US};
use crate::{emit, json_escape, Event};
use parking_lot::RwLock;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Estimate the `q`-quantile (`0 < q <= 1`) of a histogram from its
/// fixed buckets: walk the cumulative counts and report the **upper
/// bound** of the bucket containing the target rank. The estimate is
/// therefore conservative (an upper bound on the true quantile) and
/// saturates at the last finite bound for mass in the overflow bucket.
/// Returns `None` for an empty histogram.
pub fn percentile(h: &HistogramSnapshot, q: f64) -> Option<u64> {
    if h.count == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let target = ((q * h.count as f64).ceil() as u64).clamp(1, h.count);
    let mut cum = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        cum += c;
        if cum >= target {
            return Some(bucket_bound(i));
        }
    }
    Some(bucket_bound(BUCKET_BOUNDS_US.len()))
}

/// The upper bound reported for bucket `idx`; the overflow bucket
/// saturates to the last finite bound.
fn bucket_bound(idx: usize) -> u64 {
    BUCKET_BOUNDS_US
        .get(idx)
        .copied()
        .unwrap_or(BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1])
}

/// Whether observations in bucket `idx` are (conservatively) above
/// `threshold_us`: true when the bucket's upper bound exceeds the
/// threshold, so thresholds aligned to [`BUCKET_BOUNDS_US`] are exact
/// and unaligned ones over-count by at most one bucket.
fn bucket_exceeds(idx: usize, threshold_us: u64) -> bool {
    BUCKET_BOUNDS_US.get(idx).is_none_or(|&b| b > threshold_us)
}

fn merge_hist(into: &mut HistogramSnapshot, from: &HistogramSnapshot) {
    if into.buckets.len() < from.buckets.len() {
        into.buckets.resize(from.buckets.len(), 0);
    }
    for (i, &c) in from.buckets.iter().enumerate() {
        into.buckets[i] += c;
    }
    into.count += from.count;
    into.sum_us += from.sum_us;
}

/// A declarative service-level objective over one histogram, e.g.
/// "`server.queue_wait_us p99 < 5ms over 10s`": the `q`-quantile of the
/// metric, estimated over a trailing window of the recorder ring, must
/// stay at or below the threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Slo {
    /// The histogram the objective watches.
    pub metric: String,
    /// The quantile, as a fraction (`0.99` for p99).
    pub quantile: f64,
    /// The objective's threshold in microseconds.
    pub threshold_us: u64,
    /// The trailing evaluation window (rounded up to whole recorder
    /// intervals, minimum one).
    pub window: Duration,
    /// Hysteresis: consecutive healthy evaluations required before a
    /// fired objective re-arms. Keeps a jittery recovery from flapping.
    pub clear_after: u32,
}

impl Slo {
    /// Parse the SLO grammar `<metric> p<q> < <duration> over
    /// <duration>`, where durations take a `us`/`ms`/`s` suffix:
    /// `server.queue_wait_us p99 < 5ms over 10s`. `clear_after`
    /// defaults to 3 and can be adjusted on the returned value.
    pub fn parse(s: &str) -> Result<Slo, String> {
        let toks: Vec<&str> = s.split_whitespace().collect();
        let [metric, q, lt, threshold, over, window] = toks[..] else {
            return Err(format!(
                "SLO `{s}`: expected `<metric> p<q> < <dur> over <dur>`"
            ));
        };
        if lt != "<" || over != "over" {
            return Err(format!("SLO `{s}`: expected `<` and `over` keywords"));
        }
        let pct: f64 = q
            .strip_prefix('p')
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| format!("SLO `{s}`: bad quantile `{q}` (want e.g. p99)"))?;
        if !(0.0..100.0).contains(&pct) || pct <= 0.0 {
            return Err(format!("SLO `{s}`: quantile `{q}` out of (0, 100)"));
        }
        Ok(Slo {
            metric: metric.to_string(),
            quantile: pct / 100.0,
            threshold_us: parse_duration_us(threshold)
                .ok_or_else(|| format!("SLO `{s}`: bad duration `{threshold}`"))?,
            window: Duration::from_micros(
                parse_duration_us(window)
                    .ok_or_else(|| format!("SLO `{s}`: bad duration `{window}`"))?,
            ),
            clear_after: 3,
        })
    }

    /// The quantile rendered as a label: `p99`, `p99.9`.
    pub fn quantile_label(&self) -> String {
        let pct = self.quantile * 100.0;
        if (pct - pct.round()).abs() < 1e-9 {
            format!("p{}", pct.round() as u64)
        } else {
            format!("p{pct}")
        }
    }
}

impl fmt::Display for Slo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} < {}us over {}ms",
            self.metric,
            self.quantile_label(),
            self.threshold_us,
            self.window.as_millis()
        )
    }
}

fn parse_duration_us(s: &str) -> Option<u64> {
    let (num, mul) = if let Some(n) = s.strip_suffix("us") {
        (n, 1)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1_000)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1_000_000)
    } else {
        return None;
    };
    num.parse::<u64>().ok().map(|n| n * mul)
}

/// Per-objective engine state: fires once when the objective starts
/// failing, then stays silent until `clear_after` consecutive healthy
/// evaluations re-arm it.
#[derive(Debug)]
struct SloState {
    slo: Slo,
    firing: bool,
    healthy: u32,
}

impl SloState {
    fn new(slo: Slo) -> Self {
        SloState {
            slo,
            firing: false,
            healthy: 0,
        }
    }

    /// Evaluate one trailing window of per-interval deltas. Returns the
    /// violation event to emit iff the objective just started failing.
    fn observe(
        &mut self,
        window: &[&StatsSnapshot],
        window_start_us: u64,
        window_end_us: u64,
    ) -> Option<Event> {
        let mut merged = HistogramSnapshot {
            buckets: vec![0; BUCKET_BOUNDS_US.len() + 1],
            count: 0,
            sum_us: 0,
        };
        for s in window {
            if let Some(h) = s.histograms.get(&self.slo.metric) {
                merge_hist(&mut merged, h);
            }
        }
        let observed = percentile(&merged, self.slo.quantile);
        let violating = observed.is_some_and(|o| o > self.slo.threshold_us);
        if !violating {
            // An empty window counts as healthy: no observations means
            // no burn.
            if self.firing {
                self.healthy += 1;
                if self.healthy >= self.slo.clear_after {
                    self.firing = false;
                    self.healthy = 0;
                }
            }
            return None;
        }
        self.healthy = 0;
        if self.firing {
            return None;
        }
        self.firing = true;
        let bad: u64 = merged
            .buckets
            .iter()
            .enumerate()
            .filter(|(i, _)| bucket_exceeds(*i, self.slo.threshold_us))
            .map(|(_, &c)| c)
            .sum();
        // Burn rate: the share of window observations over threshold,
        // relative to the error budget 1 - q. 100 = burning the budget
        // exactly; 1000 = 10x over.
        let bad_fraction = bad as f64 / merged.count.max(1) as f64;
        let budget = (1.0 - self.slo.quantile).max(1e-9);
        Some(Event::SloViolation {
            metric: self.slo.metric.clone(),
            quantile: self.slo.quantile_label(),
            observed_us: observed.unwrap_or(0),
            threshold_us: self.slo.threshold_us,
            burn_rate_pct: ((bad_fraction / budget) * 100.0).round() as u64,
            window_start_us,
            window_end_us,
            offender: attribute_offender(window),
        })
    }
}

/// The session label with the most attributed commit attempts
/// (`server.session.<label>.commits` delta) in the window; ties break
/// to the lexicographically first label, `""` when no labeled session
/// was active. This is how a violation answers "who saturated the
/// queue".
fn attribute_offender(window: &[&StatsSnapshot]) -> String {
    let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
    for s in window {
        for (k, &v) in &s.counters {
            if v == 0 {
                continue;
            }
            if let Some(label) = k
                .strip_prefix("server.session.")
                .and_then(|r| r.strip_suffix(".commits"))
            {
                *totals.entry(label).or_default() += v;
            }
        }
    }
    totals
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(a.0)))
        .map(|(label, _)| label.to_string())
        .unwrap_or_default()
}

/// One entry of the recorder ring: the registry as of `t_us`
/// microseconds after the recorder started, plus the change since the
/// previous sample.
#[derive(Debug, Clone)]
pub struct TimelineSample {
    /// Monotone sample ordinal (survives ring eviction: the first
    /// retained sample may have `seq > 0`).
    pub seq: u64,
    /// Microseconds since the recorder started (monotonic clock).
    pub t_us: u64,
    /// The cumulative registry state at this sample.
    pub total: StatsSnapshot,
    /// Change since the previous sample (for the first sample, since
    /// recorder start). Counters and histogram buckets are true deltas;
    /// gauges carry the instantaneous level (see
    /// [`StatsSnapshot::delta_since`]).
    pub delta: StatsSnapshot,
}

/// A fired SLO violation, pinned to the sample that triggered it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The `seq` of the sample whose evaluation fired.
    pub at_seq: u64,
    /// The emitted [`Event::SloViolation`].
    pub event: Event,
}

/// The drained contents of a recorder: everything still in the ring
/// plus every violation fired over the recorder's lifetime.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// The configured sampling interval, in microseconds.
    pub interval_us: u64,
    /// Samples evicted by the drop-oldest ring before the drain.
    pub dropped: u64,
    /// Retained samples, oldest first, `seq` consecutive.
    pub samples: Vec<TimelineSample>,
    /// Fired SLO violations, oldest first (never evicted).
    pub violations: Vec<Violation>,
}

impl Timeline {
    /// Render as schema-tagged JSONL (no trailing newline): a header
    /// line, one line per sample, then one line per violation.
    ///
    /// ```text
    /// {"schema":"dbpl.timeline.v1","interval_us":N,"dropped":N,"bounds_us":[...]}
    /// {"seq":N,"t_us":N,"counters":{<nonzero deltas>},"total":{<cumulative counters>},
    ///  "gauges":{<levels>},"histograms":{"name":{"count":N,"sum_us":N,"p50_us":N,"p95_us":N,"p99_us":N}}}
    /// {"at_seq":N,"violation":{"event":"slo_violation",...}}
    /// ```
    ///
    /// Sample lines carry only nonzero counter deltas and only
    /// histograms with window observations; `total` always carries
    /// every counter, so consecutive lines conserve sums
    /// (`total[i][c] - total[i-1][c] == counters[i][c]`) — the
    /// invariant `timeline_check` verifies. Histogram percentiles are
    /// estimated over that sample's window delta.
    pub fn to_jsonl(&self) -> String {
        let mut lines = vec![format!(
            "{{\"schema\":\"dbpl.timeline.v1\",\"interval_us\":{},\"dropped\":{},\"bounds_us\":[{}]}}",
            self.interval_us,
            self.dropped,
            BUCKET_BOUNDS_US
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(",")
        )];
        for s in &self.samples {
            lines.push(sample_jsonl(s));
        }
        for v in &self.violations {
            lines.push(format!(
                "{{\"at_seq\":{},\"violation\":{}}}",
                v.at_seq,
                v.event.to_jsonl()
            ));
        }
        lines.join("\n")
    }

    /// Render as a Chrome-trace JSON array: `ph:"M"` metadata naming
    /// the process and recorder track, then `ph:"C"` counter events —
    /// one track per counter (per-interval delta), gauge (level), and
    /// active histogram (windowed p99) — loadable in chrome://tracing
    /// or Perfetto alongside the span export.
    pub fn to_chrome(&self) -> String {
        // Metadata first, so Perfetto labels the process and the
        // recorder's counter track instead of showing bare ids.
        let mut parts = vec![
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"dbpl\"}}"
                .to_string(),
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"dbpl-recorder\"}}"
                .to_string(),
        ];
        let mut track = |name: &str, ts: u64, value: i64| {
            parts.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\"tid\":0,\"args\":{{\"value\":{value}}}}}",
                json_escape(name)
            ));
        };
        for s in &self.samples {
            for (k, &v) in &s.delta.counters {
                if v > 0 {
                    track(k, s.t_us, v as i64);
                }
            }
            for (k, &v) in &s.delta.gauges {
                track(k, s.t_us, v);
            }
            for (k, h) in &s.delta.histograms {
                if let Some(p99) = percentile(h, 0.99) {
                    track(&format!("{k}.p99_us"), s.t_us, p99 as i64);
                }
            }
        }
        format!("[{}]", parts.join(",\n"))
    }

    /// A compact ASCII rendering of the most recent `max` samples (the
    /// view behind the `timeline(db)` builtin).
    pub fn render(&self, max: usize) -> String {
        let skip = self.samples.len().saturating_sub(max);
        let mut out = render_samples(&self.samples[skip..], self.interval_us, self.dropped);
        for v in &self.violations {
            out.push_str(&format!(
                "\nslo violation @#{}: {}",
                v.at_seq,
                v.event.to_jsonl()
            ));
        }
        out
    }
}

fn sample_jsonl(s: &TimelineSample) -> String {
    let mut out = format!("{{\"seq\":{},\"t_us\":{},\"counters\":{{", s.seq, s.t_us);
    let mut first = true;
    for (k, &v) in &s.delta.counters {
        if v == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{}\":{v}", json_escape(k)));
    }
    out.push_str("},\"total\":{");
    for (i, (k, v)) in s.total.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{v}", json_escape(k)));
    }
    out.push_str("},\"gauges\":{");
    for (i, (k, v)) in s.delta.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{v}", json_escape(k)));
    }
    out.push_str("},\"histograms\":{");
    let mut first = true;
    for (k, h) in &s.delta.histograms {
        if h.count == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\"{}\":{{\"count\":{},\"sum_us\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
            json_escape(k),
            h.count,
            h.sum_us,
            percentile(h, 0.50).unwrap_or(0),
            percentile(h, 0.95).unwrap_or(0),
            percentile(h, 0.99).unwrap_or(0),
        ));
    }
    out.push_str("}}");
    out
}

fn render_samples(samples: &[TimelineSample], interval_us: u64, dropped: u64) -> String {
    let mut out = format!(
        "timeline: {} sample{} @ {}ms interval ({dropped} dropped)",
        samples.len(),
        if samples.len() == 1 { "" } else { "s" },
        interval_us / 1_000,
    );
    for s in samples {
        out.push_str(&format!("\n#{} t={}ms", s.seq, s.t_us / 1_000));
        let mut counters: Vec<(&String, u64)> = s
            .delta
            .counters
            .iter()
            .filter(|(_, &v)| v > 0)
            .map(|(k, &v)| (k, v))
            .collect();
        counters.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        for (k, v) in counters.iter().take(4) {
            out.push_str(&format!(" {k}=+{v}"));
        }
        for (k, &v) in s.delta.gauges.iter().filter(|(_, &v)| v != 0) {
            out.push_str(&format!(" {k}={v}"));
        }
        for (k, h) in s
            .delta
            .histograms
            .iter()
            .filter(|(_, h)| h.count > 0)
            .take(3)
        {
            out.push_str(&format!(
                " {k} p50/p95/p99={}/{}/{}us (n={})",
                percentile(h, 0.50).unwrap_or(0),
                percentile(h, 0.95).unwrap_or(0),
                percentile(h, 0.99).unwrap_or(0),
                h.count
            ));
        }
    }
    out
}

/// Configuration for a [`Recorder`].
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Sampling interval. Each tick costs one registry snapshot, so at
    /// the default 100ms the recorder is far below noise on the commit
    /// path (the `report --smoke` mvcc phase gates this at ≤2%).
    pub interval: Duration,
    /// Ring capacity in samples; the oldest sample is dropped when
    /// full. 600 × 100ms = one minute of history by default.
    pub capacity: usize,
    /// Objectives evaluated at every sample.
    pub slos: Vec<Slo>,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            interval: Duration::from_millis(100),
            capacity: 600,
            slos: Vec::new(),
        }
    }
}

/// The most recently started recorder, weakly held so the `timeline`
/// builtin can render the live ring without keeping it alive.
static ACTIVE: RwLock<Option<Weak<RecorderInner>>> = RwLock::new(None);

struct RecorderInner {
    interval: Duration,
    capacity: usize,
    ring: Mutex<RingState>,
    stop_flag: Mutex<bool>,
    stop_cv: Condvar,
}

struct RingState {
    seq: u64,
    dropped: u64,
    /// The previous cumulative snapshot, the base for the next delta.
    base: StatsSnapshot,
    samples: VecDeque<TimelineSample>,
    slos: Vec<SloState>,
    violations: Vec<Violation>,
}

impl RecorderInner {
    /// Sleep one interval, waking early on stop. Returns `true` when
    /// stop was requested (the caller takes one final drain sample).
    fn wait_interval(&self) -> bool {
        let deadline = Instant::now() + self.interval;
        let mut stopped = self.stop_flag.lock().unwrap();
        while !*stopped {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self.stop_cv.wait_timeout(stopped, deadline - now).unwrap();
            stopped = guard;
        }
        true
    }

    fn take_sample(&self, started: Instant) {
        let total = global().snapshot();
        let t_us = started.elapsed().as_micros() as u64;
        let mut ring = self.ring.lock().unwrap();
        let delta = total.delta_since(&ring.base);
        ring.base = total.clone();
        let seq = ring.seq;
        ring.seq += 1;
        if ring.samples.len() >= self.capacity {
            ring.samples.pop_front();
            ring.dropped += 1;
        }
        ring.samples.push_back(TimelineSample {
            seq,
            t_us,
            total,
            delta,
        });
        let interval_us = (self.interval.as_micros() as u64).max(1);
        let RingState {
            samples,
            slos,
            violations,
            ..
        } = &mut *ring;
        for state in slos.iter_mut() {
            let n = (state.slo.window.as_micros() as u64)
                .div_ceil(interval_us)
                .max(1)
                .min(samples.len() as u64) as usize;
            let win: Vec<&StatsSnapshot> = samples
                .iter()
                .skip(samples.len() - n)
                .map(|s| &s.delta)
                .collect();
            let start_us = samples[samples.len() - n].t_us;
            if let Some(event) = state.observe(&win, start_us, t_us) {
                violations.push(Violation {
                    at_seq: seq,
                    event: event.clone(),
                });
                emit(event);
            }
        }
    }
}

/// A running flight recorder. Stop it with [`Recorder::stop`] to drain
/// the ring into a [`Timeline`]; dropping it also shuts the sampler
/// thread down cleanly (discarding the drained timeline).
pub struct Recorder {
    inner: Arc<RecorderInner>,
    thread: Option<JoinHandle<()>>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("interval", &self.inner.interval)
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

impl Recorder {
    /// Start sampling [`global()`] on a background thread. The first
    /// delta is measured against the registry state at this call.
    pub fn start(cfg: RecorderConfig) -> Recorder {
        let inner = Arc::new(RecorderInner {
            interval: cfg.interval.max(Duration::from_micros(100)),
            capacity: cfg.capacity.max(2),
            ring: Mutex::new(RingState {
                seq: 0,
                dropped: 0,
                base: global().snapshot(),
                samples: VecDeque::new(),
                slos: cfg.slos.into_iter().map(SloState::new).collect(),
                violations: Vec::new(),
            }),
            stop_flag: Mutex::new(false),
            stop_cv: Condvar::new(),
        });
        *ACTIVE.write() = Some(Arc::downgrade(&inner));
        let sampler = Arc::clone(&inner);
        let thread = std::thread::Builder::new()
            .name("dbpl-recorder".into())
            .spawn(move || {
                let started = Instant::now();
                loop {
                    let stopping = sampler.wait_interval();
                    sampler.take_sample(started);
                    if stopping {
                        break;
                    }
                }
            })
            .expect("spawn recorder thread");
        Recorder {
            inner,
            thread: Some(thread),
        }
    }

    /// A copy of the samples currently in the ring, oldest first.
    pub fn samples(&self) -> Vec<TimelineSample> {
        self.inner
            .ring
            .lock()
            .unwrap()
            .samples
            .iter()
            .cloned()
            .collect()
    }

    /// Stop the sampler (it takes one final drain sample first), join
    /// the thread, and return the drained timeline.
    pub fn stop(mut self) -> Timeline {
        self.shutdown();
        let ring = self.inner.ring.lock().unwrap();
        Timeline {
            interval_us: self.inner.interval.as_micros() as u64,
            dropped: ring.dropped,
            samples: ring.samples.iter().cloned().collect(),
            violations: ring.violations.clone(),
        }
    }

    fn shutdown(&mut self) {
        let Some(handle) = self.thread.take() else {
            return;
        };
        *self.inner.stop_flag.lock().unwrap() = true;
        self.inner.stop_cv.notify_all();
        let _ = handle.join();
        let mut active = ACTIVE.write();
        if active
            .as_ref()
            .and_then(Weak::upgrade)
            .is_some_and(|a| Arc::ptr_eq(&a, &self.inner))
        {
            *active = None;
        }
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Render the most recent `max` samples of the most recently started,
/// still-live recorder (the `timeline(db)` builtin); `None` when no
/// recorder is active.
pub fn render_active(max: usize) -> Option<String> {
    let inner = ACTIVE.read().as_ref().and_then(Weak::upgrade)?;
    let ring = inner.ring.lock().unwrap();
    let skip = ring.samples.len().saturating_sub(max);
    let samples: Vec<TimelineSample> = ring.samples.iter().skip(skip).cloned().collect();
    let dropped = ring.dropped;
    let violations = ring.violations.len();
    drop(ring);
    let mut out = render_samples(&samples, inner.interval.as_micros() as u64, dropped);
    if violations > 0 {
        out.push_str(&format!("\nslo violations fired: {violations}"));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_of(values: &[u64]) -> HistogramSnapshot {
        let h = crate::Histogram::new();
        for &v in values {
            h.record_us(v);
        }
        h.snapshot()
    }

    fn snap_with(metric: &str, values: &[u64]) -> StatsSnapshot {
        let mut s = StatsSnapshot::default();
        s.histograms.insert(metric.to_string(), hist_of(values));
        s
    }

    // -- satellite: percentile estimation at bucket boundaries --------

    #[test]
    fn percentile_empty_histogram_is_none() {
        let h = hist_of(&[]);
        assert_eq!(percentile(&h, 0.5), None);
        assert_eq!(percentile(&h, 0.99), None);
    }

    #[test]
    fn percentile_exact_boundary_values_report_their_own_bound() {
        // 256 is an inclusive bucket bound; anything in (128, 256]
        // reports 256.
        let h = hist_of(&[256]);
        assert_eq!(percentile(&h, 0.5), Some(256));
        let h = hist_of(&[129]);
        assert_eq!(percentile(&h, 0.5), Some(256));
        let h = hist_of(&[1]);
        assert_eq!(percentile(&h, 0.5), Some(1), "lowest bound is inclusive");
        let h = hist_of(&[0]);
        assert_eq!(
            percentile(&h, 0.5),
            Some(1),
            "zero lands in the first bucket"
        );
    }

    #[test]
    fn percentile_single_bucket_mass_pins_every_quantile() {
        let h = hist_of(&[7; 1000]);
        for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(percentile(&h, q), Some(8), "q={q}");
        }
    }

    #[test]
    fn percentile_saturates_at_the_top_bucket() {
        // Overflow mass reports the last finite bound, never a fabricated
        // larger number.
        let h = hist_of(&[1_000_000; 10]);
        assert_eq!(percentile(&h, 0.99), Some(65_536));
        assert_eq!(percentile(&h, 0.5), Some(65_536));
    }

    #[test]
    fn percentile_walks_cumulative_ranks() {
        // 99 fast + 1 catastrophically slow: p50 and p99 stay at the fast
        // bound, only the tail past rank 99 sees the overflow.
        let mut values = vec![1u64; 99];
        values.push(1_000_000);
        let h = hist_of(&values);
        assert_eq!(percentile(&h, 0.5), Some(1));
        assert_eq!(percentile(&h, 0.99), Some(1));
        assert_eq!(percentile(&h, 1.0), Some(65_536));
    }

    // -- SLO grammar and engine ---------------------------------------

    #[test]
    fn slo_grammar_round_trips() {
        let slo = Slo::parse("server.queue_wait_us p99 < 5ms over 10s").unwrap();
        assert_eq!(slo.metric, "server.queue_wait_us");
        assert!((slo.quantile - 0.99).abs() < 1e-12);
        assert_eq!(slo.threshold_us, 5_000);
        assert_eq!(slo.window, Duration::from_secs(10));
        assert_eq!(slo.clear_after, 3);
        assert_eq!(
            slo.to_string(),
            "server.queue_wait_us p99 < 5000us over 10000ms"
        );
        assert_eq!(
            Slo::parse("m p50 < 100us over 250ms").unwrap().threshold_us,
            100
        );
        for bad in [
            "",
            "m p99 < 5ms",
            "m q99 < 5ms over 10s",
            "m p99 > 5ms over 10s",
            "m p0 < 5ms over 10s",
            "m p99 < 5parsecs over 10s",
        ] {
            assert!(Slo::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn slo_fires_once_and_rearms_after_hysteresis() {
        let mut slo = Slo::parse("m p99 < 256us over 100ms").unwrap();
        slo.clear_after = 2;
        let mut state = SloState::new(slo);
        let quiet = snap_with("m", &[10; 50]);
        let loud = snap_with("m", &[5_000; 50]);
        let observe = |state: &mut SloState, s: &StatsSnapshot| state.observe(&[s], 0, 100);
        assert!(observe(&mut state, &quiet).is_none(), "healthy window");
        let fired = observe(&mut state, &loud).expect("first bad window fires");
        match &fired {
            Event::SloViolation {
                observed_us,
                threshold_us,
                burn_rate_pct,
                ..
            } => {
                assert_eq!(*observed_us, 8_192);
                assert_eq!(*threshold_us, 256);
                // Every observation blew the budget: 1.0 / 0.01 = 100x.
                assert_eq!(*burn_rate_pct, 10_000);
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert!(
            observe(&mut state, &loud).is_none(),
            "sustained violation stays quiet"
        );
        assert!(
            observe(&mut state, &quiet).is_none(),
            "1 healthy < clear_after"
        );
        assert!(
            observe(&mut state, &loud).is_none(),
            "flap inside hysteresis does not re-fire"
        );
        assert!(observe(&mut state, &quiet).is_none());
        assert!(observe(&mut state, &quiet).is_none(), "2nd healthy re-arms");
        assert!(
            observe(&mut state, &loud).is_some(),
            "a genuinely new violation fires again"
        );
    }

    #[test]
    fn slo_offender_is_busiest_labeled_session() {
        let mut a = snap_with("m", &[5_000; 10]);
        a.counters.insert("server.session.alice.commits".into(), 3);
        a.counters.insert("server.session.bob.commits".into(), 9);
        a.counters.insert("server.session.bob.reads".into(), 500);
        let mut b = StatsSnapshot::default();
        b.counters.insert("server.session.alice.commits".into(), 4);
        assert_eq!(attribute_offender(&[&a, &b]), "bob");
        assert_eq!(attribute_offender(&[&b]), "alice");
        assert_eq!(attribute_offender(&[&snap_with("m", &[1])]), "");
    }

    // -- recorder end-to-end ------------------------------------------

    #[test]
    fn recorder_samples_conserve_sums_and_evict_oldest() {
        let ctr = global().counter("timeline.test.recorder");
        let rec = Recorder::start(RecorderConfig {
            interval: Duration::from_millis(2),
            capacity: 4,
            slos: Vec::new(),
        });
        // Keep feeding the counter until the ring has demonstrably
        // evicted (first retained seq > 0) — robust to a starved
        // sampler thread under parallel test load.
        let deadline = Instant::now() + Duration::from_secs(30);
        while rec.samples().first().is_none_or(|s| s.seq == 0) {
            assert!(Instant::now() < deadline, "ring never filled");
            ctr.add(3);
            std::thread::sleep(Duration::from_millis(3));
        }
        let timeline = rec.stop();
        assert!(timeline.samples.len() >= 2, "sampler ran");
        assert!(timeline.samples.len() <= 4, "ring bounded");
        assert!(timeline.dropped > 0, "oldest samples evicted");
        for pair in timeline.samples.windows(2) {
            assert_eq!(pair[1].seq, pair[0].seq + 1, "seq consecutive");
            assert!(pair[1].t_us >= pair[0].t_us, "timestamps monotone");
            // Conservation: the delta is exactly the difference of the
            // cumulative totals, for every counter.
            for (k, &total) in &pair[1].total.counters {
                let prev = pair[0].total.counter(k);
                assert_eq!(
                    pair[1].delta.counter(k),
                    total.saturating_sub(prev),
                    "counter {k} conserved"
                );
            }
        }
        let seen: u64 = timeline
            .samples
            .iter()
            .map(|s| s.delta.counter("timeline.test.recorder"))
            .sum();
        assert!(seen > 0, "our counter shows up in retained deltas");
    }

    #[test]
    fn recorder_exports_parse_and_render() {
        let ctr = global().counter("timeline.test.export");
        let hist = global().histogram("timeline.test.export_us");
        let rec = Recorder::start(RecorderConfig {
            interval: Duration::from_millis(2),
            capacity: 64,
            slos: vec![Slo::parse("timeline.test.export_us p99 < 65ms over 10ms").unwrap()],
        });
        for _ in 0..6 {
            ctr.inc();
            hist.record_us(12);
            std::thread::sleep(Duration::from_millis(3));
        }
        let timeline = rec.stop();
        let jsonl = timeline.to_jsonl();
        let mut lines = jsonl.lines();
        let header = crate::json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(
            header.get("schema").and_then(|s| s.as_str()),
            Some("dbpl.timeline.v1")
        );
        assert_eq!(
            header.get("interval_us").and_then(|n| n.as_u64()),
            Some(2_000)
        );
        assert_eq!(
            header
                .get("bounds_us")
                .and_then(|a| a.as_array())
                .map(|a| a.len()),
            Some(BUCKET_BOUNDS_US.len())
        );
        for line in lines {
            let v = crate::json::parse(line).unwrap();
            assert!(
                v.get("seq").is_some() || v.get("violation").is_some(),
                "line is a sample or a violation: {line}"
            );
        }
        let chrome = crate::json::parse(&timeline.to_chrome()).unwrap();
        let events = chrome.as_array().expect("chrome export is an array");
        // Leading ph:"M" metadata names the process and recorder track;
        // everything after is a counter sample.
        assert_eq!(
            events[0].get("name").and_then(|n| n.as_str()),
            Some("process_name")
        );
        assert_eq!(
            events[1]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(|n| n.as_str()),
            Some("dbpl-recorder")
        );
        let counters = &events[2..];
        assert!(!counters.is_empty());
        assert!(counters.iter().all(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("C") && e.get("ts").is_some()
        }));
        let rendered = timeline.render(5);
        assert!(rendered.starts_with("timeline: "));
        assert!(rendered.contains("t="));
    }

    #[test]
    fn active_recorder_renders_and_clears_on_drop() {
        // ACTIVE is process-global; other tests may have a recorder up,
        // so only assert our own lifecycle transitions.
        let rec = Recorder::start(RecorderConfig {
            interval: Duration::from_millis(2),
            capacity: 8,
            slos: Vec::new(),
        });
        let deadline = Instant::now() + Duration::from_secs(10);
        while rec.samples().len() < 2 {
            assert!(Instant::now() < deadline, "sampler produced no samples");
            std::thread::sleep(Duration::from_millis(2));
        }
        let live = render_active(3).expect("a recorder is active");
        assert!(live.starts_with("timeline: "));
        drop(rec);
    }

    #[test]
    fn timeline_jsonl_sample_schema_is_stable() {
        let mut total = StatsSnapshot::default();
        total.counters.insert("a".into(), 5);
        total.counters.insert("b".into(), 0);
        let mut delta = StatsSnapshot::default();
        delta.counters.insert("a".into(), 2);
        delta.counters.insert("b".into(), 0);
        delta.gauges.insert("g".into(), -1);
        delta.histograms.insert("h".into(), hist_of(&[7, 7]));
        delta.histograms.insert("empty".into(), hist_of(&[]));
        let timeline = Timeline {
            interval_us: 1_000,
            dropped: 0,
            samples: vec![TimelineSample {
                seq: 3,
                t_us: 4_000,
                total,
                delta,
            }],
            violations: Vec::new(),
        };
        let line = timeline.to_jsonl().lines().nth(1).unwrap().to_string();
        assert_eq!(
            line,
            "{\"seq\":3,\"t_us\":4000,\"counters\":{\"a\":2},\"total\":{\"a\":5,\"b\":0},\
             \"gauges\":{\"g\":-1},\"histograms\":{\"h\":{\"count\":2,\"sum_us\":14,\
             \"p50_us\":8,\"p95_us\":8,\"p99_us\":8}}}"
        );
    }
}
