//! Asserts the satellite guarantee: with no profiler attached (tracing
//! inactive), entering and exiting a `span!` site allocates nothing.
//! The first entry may allocate (the per-site `OnceLock` resolves its
//! histogram handle through the registry); every entry after that must
//! be allocation-free.
//!
//! This is the only test in this binary on purpose: the counting
//! allocator is process-global, and a lone test keeps the measurement
//! window free of harness noise.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The instrumented path under test — one fixed `span!` call site, so
/// the warm-up and the measurement hit the same per-site cache.
fn enter_site(rows: u64) {
    let mut sp = dbpl_obs::span!("alloc.test");
    sp.set_attr("rows", rows); // must not format while inactive
}

#[test]
fn span_site_is_allocation_free_when_tracing_is_inactive() {
    assert!(!dbpl_obs::trace::is_active());

    // Warm the call site: the first entry resolves (and allocates) the
    // `span.<name>` histogram through the registry, once ever.
    enter_site(0);

    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..1_000 {
        enter_site(i);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state span entry/exit allocated with tracing off"
    );

    // Sanity: the same site records trace spans once tracing is enabled
    // (and is then *allowed* to allocate).
    dbpl_obs::trace::enable(16);
    {
        let mut sp = dbpl_obs::span!("alloc.test");
        sp.set_attr("rows", 7);
    }
    dbpl_obs::trace::disable();
    let spans = dbpl_obs::trace::buffered();
    assert!(spans
        .iter()
        .any(|s| s.name == "alloc.test" && s.attrs.iter().any(|(k, v)| *k == "rows" && v == "7")));
    dbpl_obs::trace::clear();
}
