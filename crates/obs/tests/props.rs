//! Property tests for the trace tree: for every randomly shaped span
//! tree, each child's `[start_us, start_us + dur_us]` interval nests
//! within its parent's, every span belongs to the capture's trace, and
//! the parent links form one connected tree.

use dbpl_obs::trace::{self, SpanRecord};
use proptest::prelude::*;

/// Open spans in the shape described by `shape` (a preorder list of
/// child counts, consumed recursively), with a little work in each so
/// durations are nonzero-ish.
fn build(shape: &mut std::vec::IntoIter<usize>, depth: usize) {
    let Some(children) = shape.next() else {
        return;
    };
    let mut sp = dbpl_obs::span!("prop.node");
    sp.set_attr("depth", depth);
    // A touch of busy work so parent/child timestamps can differ.
    std::hint::black_box((0..50).sum::<u64>());
    if depth < 6 {
        for _ in 0..children {
            build(shape, depth + 1);
        }
    }
}

fn assert_nested(spans: &[SpanRecord]) {
    let find = |id: u64| spans.iter().find(|s| s.span_id == id);
    for s in spans {
        if let Some(pid) = s.parent_id {
            let p = find(pid).expect("parent span is in the captured trace");
            assert!(
                s.start_us >= p.start_us,
                "child starts before its parent: {s:?} vs {p:?}"
            );
            assert!(
                s.start_us + s.dur_us <= p.start_us + p.dur_us,
                "child ends after its parent: {s:?} vs {p:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn child_intervals_nest_within_parents(shape in prop::collection::vec(0usize..4, 1..24)) {
        let ((), spans) = trace::capture("prop.root", || {
            build(&mut shape.clone().into_iter(), 1);
        });
        let root = spans.iter().find(|s| s.name == "prop.root").unwrap();
        prop_assert!(root.parent_id.is_none());
        for s in &spans {
            prop_assert_eq!(s.trace_id, root.trace_id);
        }
        assert_nested(&spans);
        // Connectivity: walking parent links from any span reaches the root.
        for s in &spans {
            let mut cur = s.clone();
            let mut hops = 0;
            while let Some(pid) = cur.parent_id {
                cur = spans.iter().find(|x| x.span_id == pid).unwrap().clone();
                hops += 1;
                prop_assert!(hops <= spans.len(), "parent chain cycles");
            }
            prop_assert_eq!(cur.span_id, root.span_id);
        }
    }
}
