//! The statistics differential invariant, property-tested: a catalog
//! maintained incrementally through an arbitrary mutation sequence —
//! inserts at several carried types, quarantines (the store's removal
//! form), schema evolution, forks, and *abandoned* forks (the
//! database-level shape of an aborted txn frame: mutations applied to a
//! copy that is then dropped) — always equals `analyze`'s full rebuild
//! over the surviving healthy rows. This is the correctness pattern the
//! ROADMAP-1 incremental-view work will reuse.

use dbpl_core::Database;
use dbpl_stats::StatsCatalog;
use dbpl_types::{parse_type, Type};
use dbpl_values::Value;
use proptest::prelude::*;

fn setup_db() -> Database {
    let mut db = Database::new();
    db.declare_type("Person", parse_type("{Name: Str}").unwrap())
        .unwrap();
    db.declare_type("Employee", parse_type("{Name: Str, Empno: Int}").unwrap())
        .unwrap();
    db
}

/// One step of a random mutation sequence.
#[derive(Debug, Clone)]
enum Op {
    /// Insert at one of the populated kinds (see `apply`).
    Put(u8, String, i64),
    /// Quarantine the position `seed % len` (no-op on an empty store).
    Quarantine(usize),
    /// Declare a fresh named type — schema evolution mid-sequence.
    Evolve(String),
    /// Apply the nested ops to a fork, then *drop* the fork: the
    /// database-level shape of an aborted frame. Nothing it did may
    /// leak into the surviving catalog.
    AbortedFork(Vec<(u8, String, i64)>),
    /// Apply the nested ops to a fork and adopt it — a committed frame.
    CommittedFork(Vec<(u8, String, i64)>),
}

fn arb_put() -> impl Strategy<Value = (u8, String, i64)> {
    (0u8..4, "[a-z]{1,4}", -50i64..50)
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => arb_put().prop_map(|(k, s, n)| Op::Put(k, s, n)),
        2 => (0usize..64).prop_map(Op::Quarantine),
        1 => "[A-Z][a-z]{1,3}".prop_map(Op::Evolve),
        1 => prop::collection::vec(arb_put(), 1..5).prop_map(Op::AbortedFork),
        1 => prop::collection::vec(arb_put(), 1..5).prop_map(Op::CommittedFork),
    ]
}

fn put_one(db: &mut Database, kind: u8, s: &str, n: i64) {
    let name = Value::str(s);
    match kind {
        0 => {
            db.put(Type::named("Person"), Value::record([("Name", name)]))
                .unwrap();
        }
        1 => {
            db.put(
                Type::named("Employee"),
                Value::record([("Name", name), ("Empno", Value::Int(n))]),
            )
            .unwrap();
        }
        2 => {
            db.put(Type::Int, Value::Int(n)).unwrap();
        }
        _ => {
            // A non-ground leaf (list) next to a ground one.
            db.put(
                Type::record([("Name", Type::Str), ("Tags", Type::list(Type::Int))]),
                Value::record([("Name", name), ("Tags", Value::List(vec![Value::Int(n)]))]),
            )
            .unwrap();
        }
    }
}

fn apply(db: &mut Database, op: &Op) {
    match op {
        Op::Put(k, s, n) => put_one(db, *k, s, *n),
        Op::Quarantine(seed) => {
            if !db.is_empty() {
                let pos = seed % db.len();
                db.quarantine_position(pos, "prop damage");
            }
        }
        Op::Evolve(name) => {
            // Redeclaration of an existing name fails harmlessly; the
            // point is that env changes never perturb the catalog.
            let _ = db.declare_type(name.clone(), parse_type("{Name: Str}").unwrap());
        }
        Op::AbortedFork(puts) => {
            let mut fork = db.fork();
            for (k, s, n) in puts {
                put_one(&mut fork, *k, s, *n);
            }
            drop(fork);
        }
        Op::CommittedFork(puts) => {
            let mut fork = db.fork();
            for (k, s, n) in puts {
                put_one(&mut fork, *k, s, *n);
            }
            db.adopt(fork);
        }
    }
}

/// The oracle: rebuild over exactly the healthy rows, independent of
/// `Database::analyze`'s own iterator.
fn oracle(db: &Database) -> StatsCatalog {
    let healthy: Vec<_> = db
        .dynamics()
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            !db.quarantine_report()
                .entries
                .iter()
                .any(|e| e.handle == format!("dynamics[{i}]"))
        })
        .map(|(_, d)| d.clone())
        .collect();
    StatsCatalog::rebuild(healthy.iter())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_catalog_equals_rebuild(ops in prop::collection::vec(arb_op(), 0..40)) {
        let mut db = setup_db();
        for op in &ops {
            apply(&mut db, op);
            prop_assert!(db.stats_consistent(), "diverged after {op:?}");
        }
        prop_assert_eq!(db.stats_catalog().clone(), oracle(&db));
        // And analyze() is idempotent on a consistent catalog.
        let maintained = db.stats_catalog().clone();
        db.analyze();
        prop_assert_eq!(db.stats_catalog().clone(), maintained);
    }

    #[test]
    fn rollups_conserve_rows(ops in prop::collection::vec(arb_op(), 0..30)) {
        let mut db = setup_db();
        for op in &ops {
            apply(&mut db, op);
        }
        // Top admits every carried type, so its rollup counts all rows.
        let top = db.extent_stats(&Type::Top);
        prop_assert_eq!(top.rows, db.stats_catalog().total_rows());
        prop_assert_eq!(top.fanout as usize, db.stats_catalog().type_count());
        prop_assert!(top.ground_rows <= top.rows);
        // Person rows include Employee rows, never exceed the total.
        let person = db.extent_stats(&Type::named("Person"));
        prop_assert!(person.rows <= top.rows);
        for ps in person.paths.values() {
            prop_assert!(ps.ground <= ps.present);
            prop_assert!(ps.present <= person.rows);
        }
    }
}
