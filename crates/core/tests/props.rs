//! Property tests for the core layer: all `Get` strategies agree, the
//! cascading extent manager preserves the inclusion invariant, keyed sets
//! never hold comparable members, and memoized bill-of-materials agrees
//! with the naive recursion on random DAGs.

use dbpl_core::bom::{self, TransientFields};
use dbpl_core::{Database, GetStrategy, KeyConstraint, KeyedSet};
use dbpl_types::{parse_type, Type};
use dbpl_values::{Heap, Oid, Value};
use proptest::prelude::*;

fn setup_db() -> Database {
    let mut db = Database::new();
    db.declare_type("Person", parse_type("{Name: Str}").unwrap())
        .unwrap();
    db.declare_type("Employee", parse_type("{Name: Str, Empno: Int}").unwrap())
        .unwrap();
    db.declare_type("Student", parse_type("{Name: Str, Gpa: Float}").unwrap())
        .unwrap();
    db.declare_type(
        "WorkingStudent",
        parse_type("{Name: Str, Empno: Int, Gpa: Float}").unwrap(),
    )
    .unwrap();
    db
}

/// (kind, name) pairs describing a random population.
fn arb_population() -> impl Strategy<Value = Vec<(u8, String)>> {
    prop::collection::vec((0u8..5, "[a-z]{1,4}"), 0..40)
}

fn populate(db: &mut Database, pop: &[(u8, String)]) {
    for (kind, name) in pop {
        let name = Value::str(name.clone());
        match kind {
            0 => {
                db.put(Type::named("Person"), Value::record([("Name", name)]))
                    .unwrap();
            }
            1 => {
                db.put(
                    Type::named("Employee"),
                    Value::record([("Name", name), ("Empno", Value::Int(1))]),
                )
                .unwrap();
            }
            2 => {
                db.put(
                    Type::named("Student"),
                    Value::record([("Name", name), ("Gpa", Value::float(3.0))]),
                )
                .unwrap();
            }
            3 => {
                db.put(
                    Type::named("WorkingStudent"),
                    Value::record([
                        ("Name", name),
                        ("Empno", Value::Int(2)),
                        ("Gpa", Value::float(3.5)),
                    ]),
                )
                .unwrap();
            }
            _ => {
                db.put(Type::Int, Value::Int(9)).unwrap();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn get_strategies_agree_on_random_databases(pop in arb_population()) {
        let mut db = setup_db();
        populate(&mut db, &pop);
        for bound in ["Person", "Employee", "Student", "WorkingStudent"] {
            let b = Type::named(bound);
            let naive = db.get_with(&b, GetStrategy::Scan);
            for fast in [
                GetStrategy::CachedScan,
                GetStrategy::TypedLists,
                GetStrategy::ParScan,
            ] {
                prop_assert_eq!(
                    &naive,
                    &db.get_with(&b, fast),
                    "{:?} disagrees with Scan at {}", fast, bound
                );
            }
        }
    }

    #[test]
    fn get_counts_are_monotone_in_the_hierarchy(pop in arb_population()) {
        let mut db = setup_db();
        populate(&mut db, &pop);
        let persons = db.get(&Type::named("Person")).len();
        let employees = db.get(&Type::named("Employee")).len();
        let ws = db.get(&Type::named("WorkingStudent")).len();
        prop_assert!(employees <= persons, "Employee ≤ Person extent inclusion");
        prop_assert!(ws <= employees);
        prop_assert!(db.get(&Type::Top).len() >= persons);
    }

    #[test]
    fn cascading_extents_always_satisfy_inclusion(pop in arb_population()) {
        let mut db = setup_db();
        db.enable_extent_cascade();
        let env = db.env().clone();
        db.extents_mut().create("persons", Type::named("Person"), false).unwrap();
        db.extents_mut().create("employees", Type::named("Employee"), false).unwrap();
        db.extents_mut().create("students", Type::named("Student"), false).unwrap();
        db.extents_mut().create("ws", Type::named("WorkingStudent"), false).unwrap();
        let mut oids: Vec<(u8, Oid)> = Vec::new();
        for (kind, name) in &pop {
            let (ty, v) = match kind % 4 {
                0 => ("Person", Value::record([("Name", Value::str(name.clone()))])),
                1 => (
                    "Employee",
                    Value::record([("Name", Value::str(name.clone())), ("Empno", Value::Int(1))]),
                ),
                2 => (
                    "Student",
                    Value::record([("Name", Value::str(name.clone())), ("Gpa", Value::float(3.0))]),
                ),
                _ => (
                    "WorkingStudent",
                    Value::record([
                        ("Name", Value::str(name.clone())),
                        ("Empno", Value::Int(2)),
                        ("Gpa", Value::float(3.5)),
                    ]),
                ),
            };
            let oid = db.alloc(Type::named(ty), v).unwrap();
            oids.push((kind % 4, oid));
        }
        let heap = db.heap().clone();
        for (kind, oid) in &oids {
            let target = match kind {
                0 => "persons",
                1 => "employees",
                2 => "students",
                _ => "ws",
            };
            db.extents_mut().insert(target, *oid, &heap, &env).unwrap();
        }
        prop_assert!(db.extents().check_inclusions(&env).is_none());
        // And remove a few from the top: inclusion still holds.
        for (_, oid) in oids.iter().take(3) {
            db.extents_mut().remove("persons", *oid, &env).unwrap();
        }
        prop_assert!(db.extents().check_inclusions(&env).is_none());
    }

    #[test]
    fn keyed_sets_never_hold_comparable_members(
        items in prop::collection::vec(("[ab]{1,2}", prop::option::of(0i64..3), prop::option::of(0i64..3)), 0..12)
    ) {
        let mut s = KeyedSet::new(KeyConstraint::new(["Name"]));
        for (name, empno, gpa) in items {
            let mut v = Value::record([("Name", Value::str(name))]);
            if let Some(e) = empno {
                v = dbpl_values::extend(&v, [("Empno", Value::Int(e))]).unwrap();
            }
            if let Some(g) = gpa {
                v = dbpl_values::extend(&v, [("Gpa", Value::Int(g))]).unwrap();
            }
            let _ = s.insert(v); // violations simply rejected
        }
        prop_assert!(s.no_comparable_members());
    }

    #[test]
    fn bom_memo_equals_naive_on_random_dags(
        // Layered DAG: each node picks components from earlier layers.
        layers in prop::collection::vec(prop::collection::vec((1i64..4, 0usize..100), 0..4), 1..8)
    ) {
        let mut heap = Heap::new();
        let mut nodes: Vec<Oid> = vec![bom::base_part(&mut heap, "leaf", 1.5, 1.0)];
        for (i, comps) in layers.iter().enumerate() {
            let chosen: Vec<(i64, Oid)> = comps
                .iter()
                .map(|(q, pick)| (*q, nodes[pick % nodes.len()]))
                .collect();
            let part = if chosen.is_empty() {
                bom::base_part(&mut heap, &format!("b{i}"), 2.0, 1.0)
            } else {
                bom::assembly(&mut heap, &format!("a{i}"), 1.0, 0.5, &chosen)
            };
            nodes.push(part);
        }
        let root = *nodes.last().unwrap();
        let (naive, naive_visits) = bom::total_cost_naive(&heap, root).unwrap();
        let mut memo = TransientFields::new();
        let (memoized, memo_visits) = bom::total_cost_memo(&heap, root, &mut memo).unwrap();
        prop_assert!((naive - memoized).abs() < 1e-6 * naive.abs().max(1.0));
        prop_assert!(memo_visits <= naive_visits);
        prop_assert!(memo_visits as usize <= nodes.len());
    }
}
