//! Trace-tree invariants for the instrumented `Get` paths: parallel scan
//! workers join the spawning trace (one connected tree), stage durations
//! account for the root, and span row attributes agree with the metric
//! deltas the same operation moved.

use dbpl_core::{scan_get_par_workers, Database, PAR_SCAN_CUTOFF};
use dbpl_types::{Type, TypeEnv};
use dbpl_values::{DynValue, Value};

fn int_db(n: usize) -> Database {
    let mut db = Database::new();
    for i in 0..n {
        db.put(Type::Int, Value::Int(i as i64)).unwrap();
    }
    db
}

#[test]
fn par_scan_workers_join_the_spawning_trace() {
    let env = TypeEnv::new();
    let dynamics: Vec<DynValue> = (0..PAR_SCAN_CUTOFF * 2)
        .map(|i| DynValue::new(Type::Int, Value::Int(i as i64)))
        .collect();
    // Explicit worker count: the fan-out must happen even on a
    // single-core machine, or this test would silently test nothing.
    let (rows, spans) = dbpl_obs::trace::capture("test.get", || {
        scan_get_par_workers(&dynamics, &Type::Int, &env, 4).len()
    });
    assert_eq!(rows, PAR_SCAN_CUTOFF * 2);

    let roots: Vec<_> = spans.iter().filter(|s| s.parent_id.is_none()).collect();
    assert_eq!(roots.len(), 1, "expected one root, got {roots:?}");
    let root = roots[0];
    for s in &spans {
        assert_eq!(s.trace_id, root.trace_id);
        if let Some(pid) = s.parent_id {
            assert!(
                spans.iter().any(|p| p.span_id == pid),
                "span {} has unresolved parent {pid}",
                s.name
            );
        }
    }

    // Above the cutoff the scan fans out; the worker spans — running on
    // other threads — must adopt the spawning context: children of the
    // capture root, nested in its interval, one per chunk.
    let workers: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "get.scan.worker")
        .collect();
    assert_eq!(workers.len(), 4, "one worker span per chunk");
    for w in &workers {
        assert_eq!(w.parent_id, Some(root.span_id));
        assert!(w.start_us >= root.start_us);
        assert!(w.start_us + w.dur_us <= root.start_us + root.dur_us);
    }
}

#[test]
fn get_stage_durations_and_rows_agree_with_stats() {
    let db = int_db(1000);
    let before = dbpl_obs::global().snapshot();
    let (rows, spans) = dbpl_obs::trace::capture("test.get", || db.get(&Type::Int).len());
    let delta = dbpl_obs::global().snapshot().delta_since(&before);
    assert_eq!(rows, 1000);

    let get = spans.iter().find(|s| s.name == "get").expect("get span");
    let attr = |s: &dbpl_obs::SpanRecord, k: &str| -> Option<String> {
        s.attrs
            .iter()
            .find(|(key, _)| *key == k)
            .map(|(_, v)| v.clone())
    };
    // The root's rows_out attribute is the real row count, which is also
    // what the metric registry saw. The registry is process-global and
    // other tests run concurrently, so the delta is `>=`.
    assert_eq!(attr(get, "rows_out").as_deref(), Some("1000"));
    assert_eq!(attr(get, "strategy").as_deref(), Some("typed_lists"));
    assert!(delta.counter("get.rows_sealed") >= 1000);

    // Stage accounting: the direct children of `get` (plan, index, seal)
    // are sequential and disjoint, so their durations sum to at most the
    // root's — "where did the time go" is answerable from the tree alone.
    for stage in ["get.plan", "get.index", "get.seal"] {
        assert!(
            spans
                .iter()
                .any(|s| s.name == stage && s.parent_id == Some(get.span_id)),
            "missing stage span {stage}"
        );
    }
    let child_sum: u64 = spans
        .iter()
        .filter(|s| s.parent_id == Some(get.span_id))
        .map(|s| s.dur_us)
        .sum();
    assert!(
        child_sum <= get.dur_us,
        "children of get ({child_sum}us) exceed the root ({}us)",
        get.dur_us
    );
    // The seal stage's rows_out matches the root's.
    let seal = spans.iter().find(|s| s.name == "get.seal").unwrap();
    assert_eq!(attr(seal, "rows_out").as_deref(), Some("1000"));
}
