//! The *instance* (is-a-kind-of) hierarchy, and moving between its levels.
//!
//! Distinct from the subtype hierarchy, the paper identifies the
//! instance hierarchy (value : type :: object : class) and gives two
//! database-design scenarios where the level of a concept shifts:
//!
//! 1. **The University parking lot.** Cars carry only a registration tag
//!    and a make-and-model; "information such as the length, which is used
//!    to derive charges and the availability of space, is *derived from*
//!    the make-and-model" — a car is an *instance of* a make-and-model,
//!    which common designs (separate relation, compound attribute)
//!    obscure.
//! 2. **The manufacturing plant.** "Products … above a certain price are
//!    treated as individuals and have attributes such as weight and
//!    completion date … Below that price they are treated as classes and
//!    have weight and number-in-stock as properties of the class" — the
//!    *level in the instance hierarchy depends on an attribute*.
//!
//! Both scenarios are implemented here so that level-shifting is an
//! operation, not a remodeling.

use crate::error::CoreError;
use dbpl_types::Type;
use dbpl_values::{Heap, Oid, Value};
use std::collections::BTreeMap;

// ---------- scenario 1: the parking lot ----------

/// The University parking lot: make-and-models as one level of the
/// instance hierarchy, cars as the level below.
#[derive(Debug, Default)]
pub struct ParkingLot {
    /// make-and-model name → object holding class-level attributes.
    models: BTreeMap<String, Oid>,
    /// registration tag → (model name, car object).
    cars: BTreeMap<String, (String, Oid)>,
    /// total kerb length available, in the same unit as model lengths.
    capacity: f64,
}

impl ParkingLot {
    /// A lot with a given total length capacity.
    pub fn new(capacity: f64) -> ParkingLot {
        ParkingLot {
            capacity,
            ..Default::default()
        }
    }

    /// Register a make-and-model with its class-level attributes.
    pub fn register_model(
        &mut self,
        heap: &mut Heap,
        name: &str,
        length: f64,
        weight: f64,
    ) -> Result<Oid, CoreError> {
        if self.models.contains_key(name) {
            return Err(CoreError::Invalid(format!(
                "model `{name}` already registered"
            )));
        }
        let oid = heap.alloc(
            Type::named("MakeModel"),
            Value::record([
                ("Name", Value::str(name)),
                ("Length", Value::float(length)),
                ("Weight", Value::float(weight)),
            ]),
        );
        self.models.insert(name.to_string(), oid);
        Ok(oid)
    }

    /// Park a car: "the only information maintained on cars … is the
    /// registration number (tag), and make-and-model". Refuses when the
    /// model's length would exceed remaining capacity.
    pub fn park(&mut self, heap: &mut Heap, tag: &str, model: &str) -> Result<Oid, CoreError> {
        let model_oid = *self
            .models
            .get(model)
            .ok_or_else(|| CoreError::Invalid(format!("unknown model `{model}`")))?;
        if self.cars.contains_key(tag) {
            return Err(CoreError::Invalid(format!("tag `{tag}` already parked")));
        }
        let length = self.model_length(heap, model)?;
        if self.occupied_length(heap)? + length > self.capacity {
            return Err(CoreError::Invalid("lot full".into()));
        }
        let car = heap.alloc(
            Type::named("Car"),
            Value::record([("Tag", Value::str(tag)), ("Model", Value::Ref(model_oid))]),
        );
        self.cars.insert(tag.to_string(), (model.to_string(), car));
        Ok(car)
    }

    /// A car's length — *derived* by moving one level up the instance
    /// hierarchy to its make-and-model.
    pub fn car_length(&self, heap: &Heap, tag: &str) -> Result<f64, CoreError> {
        let (model, _) = self
            .cars
            .get(tag)
            .ok_or_else(|| CoreError::Invalid(format!("unknown tag `{tag}`")))?;
        self.model_length(heap, model)
    }

    fn model_length(&self, heap: &Heap, model: &str) -> Result<f64, CoreError> {
        let oid = self.models[model];
        heap.get(oid)?
            .value
            .field("Length")
            .and_then(Value::as_float)
            .ok_or_else(|| CoreError::Invalid("model lacks Length".into()))
    }

    /// Total kerb length currently occupied (the charge/availability
    /// computation of the scenario).
    pub fn occupied_length(&self, heap: &Heap) -> Result<f64, CoreError> {
        let mut total = 0.0;
        for (model, _) in self.cars.values() {
            total += self.model_length(heap, model)?;
        }
        Ok(total)
    }

    /// Cars of a given model currently parked. Without tags this count is
    /// the only identity the lot has — "one could then have two identical
    /// cars in the database".
    pub fn cars_of_model(&self, model: &str) -> usize {
        self.cars.values().filter(|(m, _)| m == model).count()
    }

    /// Number of parked cars.
    pub fn parked(&self) -> usize {
        self.cars.len()
    }

    /// A car leaves.
    pub fn depart(&mut self, tag: &str) -> Result<(), CoreError> {
        self.cars
            .remove(tag)
            .map(|_| ())
            .ok_or_else(|| CoreError::Invalid(format!("unknown tag `{tag}`")))
    }
}

// ---------- scenario 2: the manufacturing plant ----------

/// How a product is represented, depending on its price.
#[derive(Debug, Clone, PartialEq)]
pub enum ProductEntry {
    /// Above the threshold: each unit is an individual with its own
    /// attributes.
    Individuals {
        /// The individual units (each a heap object with Weight and
        /// CompletionDate).
        units: Vec<Oid>,
    },
    /// Below the threshold: the product is a class; weight and
    /// number-in-stock are properties *of the class*.
    ClassLevel {
        /// Unit weight (class property).
        weight: f64,
        /// Number in stock (class property).
        in_stock: u64,
    },
}

/// The catalog whose entries live at a price-dependent level of the
/// instance hierarchy.
#[derive(Debug, Default)]
pub struct ProductCatalog {
    threshold: f64,
    entries: BTreeMap<String, (f64, ProductEntry)>,
}

impl ProductCatalog {
    /// A catalog with the given price threshold.
    pub fn new(threshold: f64) -> ProductCatalog {
        ProductCatalog {
            threshold,
            ..Default::default()
        }
    }

    /// The representation level a price dictates.
    pub fn level_for(&self, price: f64) -> &'static str {
        if price >= self.threshold {
            "individual"
        } else {
            "class"
        }
    }

    /// Add a product; representation is chosen by price.
    pub fn add_product(
        &mut self,
        heap: &mut Heap,
        name: &str,
        price: f64,
        unit_weight: f64,
        quantity: u64,
    ) -> Result<(), CoreError> {
        if self.entries.contains_key(name) {
            return Err(CoreError::Invalid(format!("product `{name}` exists")));
        }
        let entry = if price >= self.threshold {
            let units = (0..quantity)
                .map(|i| {
                    heap.alloc(
                        Type::named("ProductUnit"),
                        Value::record([
                            ("Product", Value::str(name)),
                            ("Serial", Value::Int(i as i64)),
                            ("Weight", Value::float(unit_weight)),
                            ("CompletionDate", Value::str("1986-05-28")),
                        ]),
                    )
                })
                .collect();
            ProductEntry::Individuals { units }
        } else {
            ProductEntry::ClassLevel {
                weight: unit_weight,
                in_stock: quantity,
            }
        };
        self.entries.insert(name.to_string(), (price, entry));
        Ok(())
    }

    /// Look up an entry.
    pub fn entry(&self, name: &str) -> Option<&(f64, ProductEntry)> {
        self.entries.get(name)
    }

    /// Units in stock, regardless of representation level.
    pub fn stock(&self, name: &str) -> Option<u64> {
        self.entries.get(name).map(|(_, e)| match e {
            ProductEntry::Individuals { units } => units.len() as u64,
            ProductEntry::ClassLevel { in_stock, .. } => *in_stock,
        })
    }

    /// Total stock weight, summing per-unit attributes for individuals and
    /// class-level weight × count otherwise.
    pub fn total_weight(&self, heap: &Heap) -> Result<f64, CoreError> {
        let mut total = 0.0;
        for (_, entry) in self.entries.values() {
            match entry {
                ProductEntry::Individuals { units } => {
                    for u in units {
                        total += heap
                            .get(*u)?
                            .value
                            .field("Weight")
                            .and_then(Value::as_float)
                            .unwrap_or(0.0);
                    }
                }
                ProductEntry::ClassLevel { weight, in_stock } => {
                    total += weight * *in_stock as f64;
                }
            }
        }
        Ok(total)
    }

    /// Re-price a product, *shifting its level* in the instance hierarchy
    /// if it crosses the threshold — the mind-bending part of the
    /// scenario, here a single operation.
    pub fn reprice(
        &mut self,
        heap: &mut Heap,
        name: &str,
        new_price: f64,
    ) -> Result<(), CoreError> {
        let (old_price, entry) = self
            .entries
            .remove(name)
            .ok_or_else(|| CoreError::Invalid(format!("unknown product `{name}`")))?;
        let was_individual = old_price >= self.threshold;
        let now_individual = new_price >= self.threshold;
        let new_entry = match (entry, was_individual, now_individual) {
            (e, a, b) if a == b => e,
            // Demote: individuals collapse into a class with a count.
            (ProductEntry::Individuals { units }, true, false) => {
                let weight = units
                    .first()
                    .and_then(|u| heap.get(*u).ok())
                    .and_then(|o| o.value.field("Weight").and_then(Value::as_float))
                    .unwrap_or(0.0);
                ProductEntry::ClassLevel {
                    weight,
                    in_stock: units.len() as u64,
                }
            }
            // Promote: the class explodes into individuals.
            (ProductEntry::ClassLevel { weight, in_stock }, false, true) => {
                let units = (0..in_stock)
                    .map(|i| {
                        heap.alloc(
                            Type::named("ProductUnit"),
                            Value::record([
                                ("Product", Value::str(name)),
                                ("Serial", Value::Int(i as i64)),
                                ("Weight", Value::float(weight)),
                                ("CompletionDate", Value::str("1986-05-28")),
                            ]),
                        )
                    })
                    .collect();
                ProductEntry::Individuals { units }
            }
            (e, _, _) => e,
        };
        self.entries
            .insert(name.to_string(), (new_price, new_entry));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn car_length_is_derived_from_make_and_model() {
        let mut heap = Heap::new();
        let mut lot = ParkingLot::new(20.0);
        lot.register_model(&mut heap, "Chevvy Nova", 4.5, 3000.0)
            .unwrap();
        lot.park(&mut heap, "PA-1234", "Chevvy Nova").unwrap();
        assert_eq!(lot.car_length(&heap, "PA-1234").unwrap(), 4.5);
    }

    #[test]
    fn capacity_is_enforced_via_model_length() {
        let mut heap = Heap::new();
        let mut lot = ParkingLot::new(10.0);
        lot.register_model(&mut heap, "Bus", 9.0, 9000.0).unwrap();
        lot.register_model(&mut heap, "Mini", 3.0, 700.0).unwrap();
        lot.park(&mut heap, "B1", "Bus").unwrap();
        assert!(lot.park(&mut heap, "M1", "Mini").is_err(), "9 + 3 > 10");
        lot.depart("B1").unwrap();
        assert!(lot.park(&mut heap, "M1", "Mini").is_ok());
    }

    #[test]
    fn two_identical_cars_coexist_by_identity() {
        // "one could then have two identical cars in the database" — with
        // tags they differ by key; the underlying objects are distinct
        // either way.
        let mut heap = Heap::new();
        let mut lot = ParkingLot::new(100.0);
        lot.register_model(&mut heap, "Nova", 4.0, 3000.0).unwrap();
        let a = lot.park(&mut heap, "T1", "Nova").unwrap();
        let b = lot.park(&mut heap, "T2", "Nova").unwrap();
        assert_ne!(a, b);
        assert_eq!(lot.cars_of_model("Nova"), 2);
        assert!(lot.park(&mut heap, "T1", "Nova").is_err(), "duplicate tag");
    }

    #[test]
    fn model_updates_propagate_to_all_instances() {
        // Shared class-level data: correct a model's length and every
        // car's derived length changes (the design the paper says compound
        // attributes would obscure).
        let mut heap = Heap::new();
        let mut lot = ParkingLot::new(100.0);
        let model = lot.register_model(&mut heap, "Nova", 4.0, 3000.0).unwrap();
        lot.park(&mut heap, "T1", "Nova").unwrap();
        lot.park(&mut heap, "T2", "Nova").unwrap();
        let fixed = dbpl_values::extend(
            &heap.get(model).unwrap().value,
            [("Length", Value::float(4.2))],
        )
        .unwrap();
        heap.update(model, fixed).unwrap();
        assert_eq!(lot.car_length(&heap, "T1").unwrap(), 4.2);
        assert_eq!(lot.car_length(&heap, "T2").unwrap(), 4.2);
        assert!((lot.occupied_length(&heap).unwrap() - 8.4).abs() < 1e-9);
    }

    #[test]
    fn price_determines_representation_level() {
        let mut heap = Heap::new();
        let mut cat = ProductCatalog::new(1000.0);
        cat.add_product(&mut heap, "turbine", 50_000.0, 800.0, 3)
            .unwrap();
        cat.add_product(&mut heap, "washer", 0.05, 0.01, 10_000)
            .unwrap();
        assert!(matches!(
            cat.entry("turbine").unwrap().1,
            ProductEntry::Individuals { .. }
        ));
        assert!(matches!(
            cat.entry("washer").unwrap().1,
            ProductEntry::ClassLevel { .. }
        ));
        assert_eq!(cat.stock("turbine"), Some(3));
        assert_eq!(cat.stock("washer"), Some(10_000));
        assert_eq!(cat.level_for(2000.0), "individual");
        assert_eq!(cat.level_for(2.0), "class");
    }

    #[test]
    fn total_weight_spans_both_levels() {
        let mut heap = Heap::new();
        let mut cat = ProductCatalog::new(1000.0);
        cat.add_product(&mut heap, "turbine", 50_000.0, 800.0, 2)
            .unwrap();
        cat.add_product(&mut heap, "washer", 0.05, 0.01, 1000)
            .unwrap();
        let w = cat.total_weight(&heap).unwrap();
        assert!((w - (1600.0 + 10.0)).abs() < 1e-9);
    }

    #[test]
    fn repricing_shifts_levels_and_preserves_stock() {
        let mut heap = Heap::new();
        let mut cat = ProductCatalog::new(1000.0);
        cat.add_product(&mut heap, "gadget", 2000.0, 5.0, 4)
            .unwrap();
        // Demote below the threshold: individuals → class.
        cat.reprice(&mut heap, "gadget", 10.0).unwrap();
        assert!(matches!(
            cat.entry("gadget").unwrap().1,
            ProductEntry::ClassLevel { .. }
        ));
        assert_eq!(cat.stock("gadget"), Some(4));
        // Promote again: class → individuals.
        cat.reprice(&mut heap, "gadget", 5000.0).unwrap();
        assert!(matches!(
            cat.entry("gadget").unwrap().1,
            ProductEntry::Individuals { .. }
        ));
        assert_eq!(cat.stock("gadget"), Some(4));
        let w = cat.total_weight(&heap).unwrap();
        assert!(
            (w - 20.0).abs() < 1e-9,
            "weight preserved across both shifts"
        );
    }
}
