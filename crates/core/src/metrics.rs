//! Cached handles to the query-engine counters in the global
//! [`dbpl_obs`] registry. Each handle is resolved once per process and
//! then costs one relaxed atomic add per use — cheap enough for the
//! `Get` hot paths the E1 smoke gate protects.

use crate::database::GetStrategy;
use dbpl_obs::Counter;
use std::sync::{Arc, OnceLock};

macro_rules! counter_fn {
    ($fn_name:ident, $metric:expr) => {
        pub(crate) fn $fn_name() -> &'static Counter {
            static C: OnceLock<Arc<Counter>> = OnceLock::new();
            C.get_or_init(|| dbpl_obs::global().counter($metric))
        }
    };
}

counter_fn!(strategy_scan, "get.strategy.scan");
counter_fn!(strategy_cached_scan, "get.strategy.cached_scan");
counter_fn!(strategy_typed_lists, "get.strategy.typed_lists");
counter_fn!(strategy_par_scan, "get.strategy.par_scan");
counter_fn!(rows_scanned, "get.rows_scanned");
counter_fn!(rows_sealed, "get.rows_sealed");
counter_fn!(stats_observed_puts, "stats.observed_puts");
counter_fn!(stats_observed_removes, "stats.observed_removes");
counter_fn!(stats_rebuilds, "stats.rebuilds");

/// The selection counter for one `Get` strategy.
pub(crate) fn strategy_counter(strategy: GetStrategy) -> &'static Counter {
    match strategy {
        GetStrategy::Scan => strategy_scan(),
        GetStrategy::CachedScan => strategy_cached_scan(),
        GetStrategy::TypedLists => strategy_typed_lists(),
        GetStrategy::ParScan => strategy_par_scan(),
    }
}
