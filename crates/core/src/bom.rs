//! The bill-of-materials computation, with transient memo fields on
//! persistent objects.
//!
//! The paper's closing example: computing the total manufacturing cost of
//! a part is "a text-book exercise but proved rather awkward in some of
//! the languages that were examined":
//!
//! ```text
//! function TotalCost(p: Part);
//!   if p.IsBase then p.PurchasePrice
//!   else p.ManufacturingCost +
//!        sum{TotalCost(q.SubPart) * q.Qty | q in p.Components}
//! ```
//!
//! "The only difficulty … is that when a given subpart is used in more
//! than one way in the manufacture of a larger part, the total cost will
//! be needlessly recomputed … This will happen when the parts explosion
//! diagram is not a tree but a directed acyclic graph. The way out of this
//! is to *memoize* intermediate results … these additional fields are not
//! required to be accessible outside the computation … Even though the
//! Part values … are presumably persistent, there is no need for the
//! additional information to persist."
//!
//! [`TransientFields`] is that mechanism: a side table attaching extra
//! fields to persistent objects by identity, never captured by any
//! persistence model. Experiment E2 measures naive vs memoized cost on
//! DAGs of varying sharing.

use crate::error::CoreError;
use dbpl_types::{parse_type, Type, TypeEnv};
use dbpl_values::{Heap, Oid, RecordFields, Value};
use std::collections::BTreeMap;

/// Transient fields: extra, non-persistent information attached to
/// persistent objects by identity.
#[derive(Debug, Clone, Default)]
pub struct TransientFields {
    table: BTreeMap<Oid, RecordFields>,
}

impl TransientFields {
    /// An empty attachment table.
    pub fn new() -> TransientFields {
        TransientFields::default()
    }

    /// Attach (or overwrite) a transient field on an object.
    pub fn put(&mut self, oid: Oid, field: impl Into<String>, v: Value) {
        self.table.entry(oid).or_default().insert(field.into(), v);
    }

    /// Read a transient field.
    pub fn get(&self, oid: Oid, field: &str) -> Option<&Value> {
        self.table.get(&oid).and_then(|fs| fs.get(field))
    }

    /// Discard everything (end of the computation — the fields were never
    /// "required to be accessible outside").
    pub fn clear(&mut self) {
        self.table.clear();
    }

    /// Number of objects carrying attachments.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

/// The `Part` record type of the example.
pub fn part_type() -> Type {
    parse_type(
        "{Name: Str, IsBase: Bool, PurchasePrice: Float, ManufacturingCost: Float, \
          Mass: Float, Components: List[{Qty: Int, SubPart: Top}]}",
    )
    .expect("valid part type")
}

/// Register the `Part` type in an environment.
pub fn declare_part_type(env: &mut TypeEnv) -> Result<(), CoreError> {
    env.declare("Part", part_type())?;
    Ok(())
}

/// Build a *base* (purchased) part in the heap.
pub fn base_part(heap: &mut Heap, name: &str, price: f64, mass: f64) -> Oid {
    heap.alloc(
        Type::named("Part"),
        Value::record([
            ("Name", Value::str(name)),
            ("IsBase", Value::Bool(true)),
            ("PurchasePrice", Value::float(price)),
            ("ManufacturingCost", Value::float(0.0)),
            ("Mass", Value::float(mass)),
            ("Components", Value::list([])),
        ]),
    )
}

/// Build a *manufactured* part from components `(quantity, subpart)`.
pub fn assembly(
    heap: &mut Heap,
    name: &str,
    manufacturing_cost: f64,
    mass: f64,
    components: &[(i64, Oid)],
) -> Oid {
    let comps: Vec<Value> = components
        .iter()
        .map(|(q, sub)| Value::record([("Qty", Value::Int(*q)), ("SubPart", Value::Ref(*sub))]))
        .collect();
    heap.alloc(
        Type::named("Part"),
        Value::record([
            ("Name", Value::str(name)),
            ("IsBase", Value::Bool(false)),
            ("PurchasePrice", Value::float(0.0)),
            ("ManufacturingCost", Value::float(manufacturing_cost)),
            ("Mass", Value::float(mass)),
            ("Components", Value::List(comps)),
        ]),
    )
}

/// Decoded `Part` fields: `(is_base, price, manufacturing_cost, mass, components)`.
type PartFields = (bool, f64, f64, f64, Vec<(i64, Oid)>);

fn part_fields(heap: &Heap, p: Oid) -> Result<PartFields, CoreError> {
    let obj = heap.get(p)?;
    let is_base = obj
        .value
        .field("IsBase")
        .and_then(Value::as_bool)
        .unwrap_or(false);
    let price = obj
        .value
        .field("PurchasePrice")
        .and_then(Value::as_float)
        .unwrap_or(0.0);
    let mcost = obj
        .value
        .field("ManufacturingCost")
        .and_then(Value::as_float)
        .unwrap_or(0.0);
    let mass = obj
        .value
        .field("Mass")
        .and_then(Value::as_float)
        .unwrap_or(0.0);
    let comps = obj
        .value
        .field("Components")
        .and_then(Value::as_list)
        .map(|xs| {
            xs.iter()
                .filter_map(|c| {
                    let q = c.field("Qty")?.as_int()?;
                    let s = c.field("SubPart")?.as_ref_oid()?;
                    Some((q, s))
                })
                .collect::<Vec<_>>()
        })
        .unwrap_or_default();
    Ok((is_base, price, mcost, mass, comps))
}

/// The paper's recursive `TotalCost` verbatim — no memoization. Returns
/// the cost and the number of part visits (the measure of wasted
/// recomputation on DAGs).
pub fn total_cost_naive(heap: &Heap, p: Oid) -> Result<(f64, u64), CoreError> {
    let (is_base, price, mcost, _, comps) = part_fields(heap, p)?;
    let mut visits = 1u64;
    if is_base {
        return Ok((price, visits));
    }
    let mut total = mcost;
    for (q, sub) in comps {
        let (c, v) = total_cost_naive(heap, sub)?;
        total += c * q as f64;
        visits += v;
    }
    Ok((total, visits))
}

/// `TotalCost` with memoization through transient fields: "it first checks
/// these fields to see if it has already done the computation for the part
/// p". Returns cost and visits (at most one full visit per distinct part).
pub fn total_cost_memo(
    heap: &Heap,
    p: Oid,
    memo: &mut TransientFields,
) -> Result<(f64, u64), CoreError> {
    if let Some(v) = memo.get(p, "TotalCost") {
        let c = v
            .as_float()
            .ok_or_else(|| CoreError::Invalid("bad memo".into()))?;
        return Ok((c, 0));
    }
    let (is_base, price, mcost, _, comps) = part_fields(heap, p)?;
    let mut visits = 1u64;
    let total = if is_base {
        price
    } else {
        let mut t = mcost;
        for (q, sub) in comps {
            let (c, v) = total_cost_memo(heap, sub, memo)?;
            t += c * q as f64;
            visits += v;
        }
        t
    };
    memo.put(p, "TotalCost", Value::float(total));
    Ok((total, visits))
}

/// The paper's actual requirement: "It is required simultaneously to
/// compute the cost of manufacturing and total mass of a manufactured
/// part." One memoized traversal produces both.
pub fn cost_and_mass(
    heap: &Heap,
    p: Oid,
    memo: &mut TransientFields,
) -> Result<(f64, f64), CoreError> {
    if let (Some(c), Some(m)) = (memo.get(p, "TotalCost"), memo.get(p, "TotalMass")) {
        let c = c
            .as_float()
            .ok_or_else(|| CoreError::Invalid("bad memo".into()))?;
        let m = m
            .as_float()
            .ok_or_else(|| CoreError::Invalid("bad memo".into()))?;
        return Ok((c, m));
    }
    let (is_base, price, mcost, own_mass, comps) = part_fields(heap, p)?;
    let (cost, mass) = if is_base {
        (price, own_mass)
    } else {
        let mut c = mcost;
        let mut m = own_mass;
        for (q, sub) in comps {
            let (sc, sm) = cost_and_mass(heap, sub, memo)?;
            c += sc * q as f64;
            m += sm * q as f64;
        }
        (c, m)
    };
    memo.put(p, "TotalCost", Value::float(cost));
    memo.put(p, "TotalMass", Value::float(mass));
    Ok((cost, mass))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// bolt(2.0) ×4 → bracket; bracket ×2 + bolt ×2 → frame.
    fn small_dag(heap: &mut Heap) -> (Oid, Oid, Oid) {
        let bolt = base_part(heap, "bolt", 2.0, 0.1);
        let bracket = assembly(heap, "bracket", 5.0, 1.0, &[(4, bolt)]);
        let frame = assembly(heap, "frame", 10.0, 0.5, &[(2, bracket), (2, bolt)]);
        (bolt, bracket, frame)
    }

    #[test]
    fn paper_recursion_computes_the_right_cost() {
        let mut heap = Heap::new();
        let (_, bracket, frame) = small_dag(&mut heap);
        // bracket = 5 + 4*2 = 13; frame = 10 + 2*13 + 2*2 = 40.
        assert_eq!(total_cost_naive(&heap, bracket).unwrap().0, 13.0);
        assert_eq!(total_cost_naive(&heap, frame).unwrap().0, 40.0);
    }

    #[test]
    fn memoized_cost_agrees_with_naive() {
        let mut heap = Heap::new();
        let (_, _, frame) = small_dag(&mut heap);
        let naive = total_cost_naive(&heap, frame).unwrap().0;
        let mut memo = TransientFields::new();
        let memoized = total_cost_memo(&heap, frame, &mut memo).unwrap().0;
        assert_eq!(naive, memoized);
    }

    #[test]
    fn dag_sharing_causes_recomputation_only_in_naive() {
        let mut heap = Heap::new();
        let (_, _, frame) = small_dag(&mut heap);
        // Naive: frame, bracket, bolt (via bracket), bolt (direct) = 4.
        let (_, naive_visits) = total_cost_naive(&heap, frame).unwrap();
        assert_eq!(naive_visits, 4);
        // Memoized: each of the 3 distinct parts once.
        let mut memo = TransientFields::new();
        let (_, memo_visits) = total_cost_memo(&heap, frame, &mut memo).unwrap();
        assert_eq!(memo_visits, 3);
    }

    #[test]
    fn deep_diamond_dag_is_exponential_for_naive() {
        // A chain of diamonds: part_i uses part_{i-1} twice.
        let mut heap = Heap::new();
        let mut cur = base_part(&mut heap, "leaf", 1.0, 1.0);
        let depth = 12;
        for i in 0..depth {
            cur = assembly(
                &mut heap,
                &format!("lvl{i}"),
                0.0,
                0.0,
                &[(1, cur), (1, cur)],
            );
        }
        let (cost, naive_visits) = total_cost_naive(&heap, cur).unwrap();
        assert_eq!(cost, f64::from(1 << depth));
        assert_eq!(naive_visits, (1 << (depth + 1)) - 1, "2^{{d+1}}−1 visits");
        let mut memo = TransientFields::new();
        let (mcost, memo_visits) = total_cost_memo(&heap, cur, &mut memo).unwrap();
        assert_eq!(mcost, cost);
        assert_eq!(memo_visits, depth as u64 + 1, "one visit per distinct part");
    }

    #[test]
    fn cost_and_mass_computed_simultaneously() {
        let mut heap = Heap::new();
        let (_, _, frame) = small_dag(&mut heap);
        let mut memo = TransientFields::new();
        let (cost, mass) = cost_and_mass(&heap, frame, &mut memo).unwrap();
        assert_eq!(cost, 40.0);
        // mass: frame 0.5 + 2*(bracket 1.0 + 4*0.1) + 2*0.1 = 0.5+2.8+0.2
        assert!((mass - 3.5).abs() < 1e-9);
    }

    #[test]
    fn transient_fields_do_not_persist() {
        use dbpl_persist::Image;
        let mut heap = Heap::new();
        let (_, _, frame) = small_dag(&mut heap);
        let mut memo = TransientFields::new();
        total_cost_memo(&heap, frame, &mut memo).unwrap();
        assert!(!memo.is_empty());
        // Capture an image of the heap: the memo table is simply not part
        // of it — persistence of Part values does not drag the transient
        // fields along.
        let env = TypeEnv::new();
        let img = Image::capture(&env, &heap, &std::collections::BTreeMap::new());
        let (_, restored, _) = img.restore().unwrap();
        for (oid, obj) in restored.iter() {
            assert!(
                obj.value.field("TotalCost").is_none(),
                "object {oid} leaked memo data"
            );
        }
    }

    #[test]
    fn transient_table_basics() {
        let mut t = TransientFields::new();
        let o = Oid(1);
        assert!(t.get(o, "x").is_none());
        t.put(o, "x", Value::Int(1));
        t.put(o, "x", Value::Int(2));
        assert_eq!(t.get(o, "x"), Some(&Value::Int(2)));
        assert_eq!(t.len(), 1);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn part_type_is_declarable() {
        let mut env = TypeEnv::new();
        declare_part_type(&mut env).unwrap();
        assert!(env.lookup("Part").is_some());
    }
}
