//! Errors for the database facade.

use dbpl_types::Type;
use std::fmt;

/// Errors raised by database, extent and key operations.
#[derive(Debug)]
pub enum CoreError {
    /// A type error.
    Type(dbpl_types::TypeError),
    /// A value error.
    Value(dbpl_values::ValueError),
    /// A persistence error.
    Persist(dbpl_persist::PersistError),
    /// An extent with this name already exists.
    ExtentExists(String),
    /// No extent with this name.
    UnknownExtent(String),
    /// An object was inserted into an extent whose type it does not have.
    NotAMember {
        /// The extent's name.
        extent: String,
        /// The extent's element type.
        expected: Type,
        /// The object's type.
        got: Type,
    },
    /// A key constraint rejected an insertion.
    KeyViolation(String),
    /// Miscellaneous invariant violation.
    Invalid(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Type(e) => write!(f, "{e}"),
            CoreError::Value(e) => write!(f, "{e}"),
            CoreError::Persist(e) => write!(f, "{e}"),
            CoreError::ExtentExists(n) => write!(f, "extent `{n}` already exists"),
            CoreError::UnknownExtent(n) => write!(f, "unknown extent `{n}`"),
            CoreError::NotAMember {
                extent,
                expected,
                got,
            } => {
                write!(
                    f,
                    "extent `{extent}` holds {expected}; object has type {got}"
                )
            }
            CoreError::KeyViolation(m) => write!(f, "key violation: {m}"),
            CoreError::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<dbpl_types::TypeError> for CoreError {
    fn from(e: dbpl_types::TypeError) -> Self {
        CoreError::Type(e)
    }
}
impl From<dbpl_values::ValueError> for CoreError {
    fn from(e: dbpl_values::ValueError) -> Self {
        CoreError::Value(e)
    }
}
impl From<dbpl_persist::PersistError> for CoreError {
    fn from(e: dbpl_persist::PersistError) -> Self {
        CoreError::Persist(e)
    }
}
