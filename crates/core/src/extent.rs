//! Extents, divorced from types.
//!
//! The paper argues a database programming language should separate a
//! *type* from its *extent* (the set of all values of that type in the
//! database): one may want **multiple extents per type** (hypothetical
//! database states, memo tables), **transient extents** (intermediate
//! relations), and types with **no useful extent at all** (`Int`).
//!
//! [`ExtentManager`] provides maintained extents in the Taxis/Adaplex
//! style — explicit insertion and deletion, with the *inclusion hierarchy
//! derived from the type hierarchy*: when cascading is on, "creating an
//! instance of Employee will also create a new instance of Person", i.e.
//! inserting into an extent inserts into every extent at a supertype, and
//! deletion cascades downward to extents at subtypes, preserving the
//! inclusion invariant checked by [`ExtentManager::check_inclusions`].
//!
//! [`TypedListIndex`] is the alternative implementation the paper
//! mentions — "keep a set of (statically) typed lists with appropriate
//! structure sharing" — indexing the dynamic store by carried type so a
//! `Get` touches only the lists at subtypes of the bound.

use crate::error::CoreError;
use dbpl_types::{is_subtype, Type, TypeEnv};
use dbpl_values::{DynValue, Heap, Oid};
use std::collections::{BTreeMap, BTreeSet};

/// A maintained extent: a named set of object identities at a type.
#[derive(Debug, Clone)]
pub struct Extent {
    name: String,
    elem_ty: Type,
    members: BTreeSet<Oid>,
    transient: bool,
}

impl Extent {
    /// The extent's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The element type.
    pub fn elem_type(&self) -> &Type {
        &self.elem_ty
    }

    /// Member identities.
    pub fn members(&self) -> impl Iterator<Item = Oid> + '_ {
        self.members.iter().copied()
    }

    /// Membership test.
    pub fn contains(&self, oid: Oid) -> bool {
        self.members.contains(&oid)
    }

    /// Cardinality.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Is the extent empty?
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Is the extent transient (excluded from persistence)?
    pub fn is_transient(&self) -> bool {
        self.transient
    }
}

/// A collection of maintained extents with hierarchy-linked insertion.
#[derive(Debug, Clone, Default)]
pub struct ExtentManager {
    extents: BTreeMap<String, Extent>,
    /// When true, insertion cascades to supertype extents and deletion to
    /// subtype extents (the Taxis/Adaplex semantics). When false, extents
    /// are fully independent (the paper's "more general framework").
    cascade: bool,
}

impl ExtentManager {
    /// A manager with independent extents.
    pub fn new() -> ExtentManager {
        ExtentManager::default()
    }

    /// A manager with hierarchy-linked (cascading) extents.
    pub fn with_cascade() -> ExtentManager {
        ExtentManager {
            cascade: true,
            ..Default::default()
        }
    }

    /// Is cascading on?
    pub fn cascading(&self) -> bool {
        self.cascade
    }

    /// Create an extent. Multiple extents may share one element type —
    /// precisely what single-class-construct languages cannot express.
    pub fn create(
        &mut self,
        name: impl Into<String>,
        elem_ty: Type,
        transient: bool,
    ) -> Result<(), CoreError> {
        let name = name.into();
        if self.extents.contains_key(&name) {
            return Err(CoreError::ExtentExists(name));
        }
        self.extents.insert(
            name.clone(),
            Extent {
                name,
                elem_ty,
                members: BTreeSet::new(),
                transient,
            },
        );
        Ok(())
    }

    /// Drop an extent (objects survive; only the collection goes away —
    /// the whole point of separating extent from type).
    pub fn drop_extent(&mut self, name: &str) -> Result<Extent, CoreError> {
        self.extents
            .remove(name)
            .ok_or_else(|| CoreError::UnknownExtent(name.to_string()))
    }

    /// Look up an extent.
    pub fn extent(&self, name: &str) -> Result<&Extent, CoreError> {
        self.extents
            .get(name)
            .ok_or_else(|| CoreError::UnknownExtent(name.to_string()))
    }

    /// All extents.
    pub fn iter(&self) -> impl Iterator<Item = &Extent> {
        self.extents.values()
    }

    /// Insert an object (by identity) into an extent. The object's
    /// declared type must be a subtype of the extent's element type. With
    /// cascading on, the object also joins every extent whose element type
    /// is a supertype of *this extent's* element type.
    pub fn insert(
        &mut self,
        name: &str,
        oid: Oid,
        heap: &Heap,
        env: &TypeEnv,
    ) -> Result<(), CoreError> {
        let obj_ty = heap.get(oid)?.ty.clone();
        let elem_ty = {
            let e = self.extent(name)?;
            if !is_subtype(&obj_ty, &e.elem_ty, env) {
                return Err(CoreError::NotAMember {
                    extent: name.to_string(),
                    expected: e.elem_ty.clone(),
                    got: obj_ty,
                });
            }
            e.elem_ty.clone()
        };
        self.extents
            .get_mut(name)
            .expect("checked")
            .members
            .insert(oid);
        if self.cascade {
            for e in self.extents.values_mut() {
                if e.name != name && is_subtype(&elem_ty, &e.elem_ty, env) {
                    e.members.insert(oid);
                }
            }
        }
        Ok(())
    }

    /// Remove an object from an extent. With cascading on, the object also
    /// leaves every extent at a *subtype* (it cannot remain an Employee
    /// after ceasing to be a Person).
    pub fn remove(&mut self, name: &str, oid: Oid, env: &TypeEnv) -> Result<bool, CoreError> {
        let elem_ty = self.extent(name)?.elem_ty.clone();
        let was = self
            .extents
            .get_mut(name)
            .expect("checked")
            .members
            .remove(&oid);
        if self.cascade && was {
            for e in self.extents.values_mut() {
                if e.name != name && is_subtype(&e.elem_ty, &elem_ty, env) {
                    e.members.remove(&oid);
                }
            }
        }
        Ok(was)
    }

    /// Verify the inclusion invariant: for any two extents with `T₁ ≤ T₂`,
    /// `members(T₁) ⊆ members(T₂)`. Returns the violating pair if any.
    /// (Trivially holds under cascading; independent extents may violate
    /// it freely — that is their point.)
    pub fn check_inclusions(&self, env: &TypeEnv) -> Option<(String, String)> {
        for a in self.extents.values() {
            for b in self.extents.values() {
                if a.name != b.name
                    && is_subtype(&a.elem_ty, &b.elem_ty, env)
                    && !a.members.is_subset(&b.members)
                {
                    return Some((a.name.clone(), b.name.clone()));
                }
            }
        }
        None
    }

    /// Drop all transient extents (called when a database image is
    /// captured: transient extents are not required to persist).
    pub fn drop_transient(&mut self) {
        self.extents.retain(|_, e| !e.transient);
    }

    /// Remove members whose object no longer exists in `heap`, returning
    /// each pruned `(extent, oid)` pair. A graceful-degradation sweep: a
    /// dangling member (left by damage or a partial recovery) would
    /// otherwise poison every traversal of its extent.
    pub fn prune_dangling(&mut self, heap: &Heap) -> Vec<(String, Oid)> {
        let mut pruned = Vec::new();
        for e in self.extents.values_mut() {
            let dead: Vec<Oid> = e
                .members
                .iter()
                .copied()
                .filter(|oid| !heap.contains(*oid))
                .collect();
            for oid in dead {
                e.members.remove(&oid);
                pruned.push((e.name.clone(), oid));
            }
        }
        pruned
    }
}

/// An index of a dynamic store by carried type: "a set of (statically)
/// typed lists". A `Get` then unions the lists whose type is a subtype of
/// the bound — one subtype check per *distinct type*, not per element.
#[derive(Debug, Clone, Default)]
pub struct TypedListIndex {
    lists: BTreeMap<Type, Vec<usize>>,
}

impl TypedListIndex {
    /// Empty index.
    pub fn new() -> TypedListIndex {
        TypedListIndex::default()
    }

    /// Build an index over a dynamic store.
    pub fn build(dynamics: &[DynValue]) -> TypedListIndex {
        let mut idx = TypedListIndex::new();
        for (i, d) in dynamics.iter().enumerate() {
            idx.add(d.ty.clone(), i);
        }
        idx
    }

    /// Register element `pos` as carrying type `ty`.
    pub fn add(&mut self, ty: Type, pos: usize) {
        self.lists.entry(ty).or_default().push(pos);
    }

    /// The positions of all elements whose carried type is a subtype of
    /// `bound`.
    pub fn query(&self, bound: &Type, env: &TypeEnv) -> Vec<usize> {
        let mut out = Vec::new();
        for (ty, positions) in &self.lists {
            if is_subtype(ty, bound, env) {
                out.extend_from_slice(positions);
            }
        }
        out.sort_unstable();
        out
    }

    /// Number of distinct carried types.
    pub fn distinct_types(&self) -> usize {
        self.lists.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpl_types::parse_type;
    use dbpl_values::Value;

    fn env() -> TypeEnv {
        let mut e = TypeEnv::new();
        e.declare("Person", parse_type("{Name: Str}").unwrap())
            .unwrap();
        e.declare("Employee", parse_type("{Name: Str, Empno: Int}").unwrap())
            .unwrap();
        e.declare(
            "Manager",
            parse_type("{Name: Str, Empno: Int, Reports: Int}").unwrap(),
        )
        .unwrap();
        e
    }

    fn person_obj(heap: &mut Heap, ty: &str, name: &str) -> Oid {
        let mut v = Value::record([("Name", Value::str(name))]);
        if ty != "Person" {
            v = dbpl_values::extend(&v, [("Empno", Value::Int(1))]).unwrap();
        }
        if ty == "Manager" {
            v = dbpl_values::extend(&v, [("Reports", Value::Int(3))]).unwrap();
        }
        heap.alloc(Type::named(ty), v)
    }

    #[test]
    fn cascade_insertion_implements_taxis_semantics() {
        let env = env();
        let mut heap = Heap::new();
        let mut m = ExtentManager::with_cascade();
        m.create("persons", Type::named("Person"), false).unwrap();
        m.create("employees", Type::named("Employee"), false)
            .unwrap();
        let e = person_obj(&mut heap, "Employee", "e1");
        m.insert("employees", e, &heap, &env).unwrap();
        // "creating an instance of EMPLOYEE will also be in the extent of
        // PERSON".
        assert!(m.extent("persons").unwrap().contains(e));
        assert!(m.check_inclusions(&env).is_none());
    }

    #[test]
    fn cascade_is_transitive_through_the_hierarchy() {
        let env = env();
        let mut heap = Heap::new();
        let mut m = ExtentManager::with_cascade();
        m.create("persons", Type::named("Person"), false).unwrap();
        m.create("employees", Type::named("Employee"), false)
            .unwrap();
        m.create("managers", Type::named("Manager"), false).unwrap();
        let boss = person_obj(&mut heap, "Manager", "m1");
        m.insert("managers", boss, &heap, &env).unwrap();
        assert!(m.extent("employees").unwrap().contains(boss));
        assert!(m.extent("persons").unwrap().contains(boss));
    }

    #[test]
    fn cascade_deletion_goes_downward() {
        let env = env();
        let mut heap = Heap::new();
        let mut m = ExtentManager::with_cascade();
        m.create("persons", Type::named("Person"), false).unwrap();
        m.create("employees", Type::named("Employee"), false)
            .unwrap();
        let e = person_obj(&mut heap, "Employee", "e1");
        m.insert("employees", e, &heap, &env).unwrap();
        // Removing from the superclass removes from the subclass too...
        assert!(m.remove("persons", e, &env).unwrap());
        assert!(!m.extent("employees").unwrap().contains(e));
        // ...but removing from a subclass leaves the superclass alone.
        let e2 = person_obj(&mut heap, "Employee", "e2");
        m.insert("employees", e2, &heap, &env).unwrap();
        m.remove("employees", e2, &env).unwrap();
        assert!(m.extent("persons").unwrap().contains(e2));
        assert!(m.check_inclusions(&env).is_none());
    }

    #[test]
    fn typed_insertion_is_checked() {
        let env = env();
        let mut heap = Heap::new();
        let mut m = ExtentManager::new();
        m.create("employees", Type::named("Employee"), false)
            .unwrap();
        let p = person_obj(&mut heap, "Person", "p1");
        assert!(matches!(
            m.insert("employees", p, &heap, &env),
            Err(CoreError::NotAMember { .. })
        ));
    }

    #[test]
    fn multiple_extents_per_type() {
        // "One may want to experiment with hypothetical states of the
        // database" — two independent Person extents.
        let env = env();
        let mut heap = Heap::new();
        let mut m = ExtentManager::new();
        m.create("persons", Type::named("Person"), false).unwrap();
        m.create("hypothetical", Type::named("Person"), true)
            .unwrap();
        let p = person_obj(&mut heap, "Person", "p1");
        m.insert("persons", p, &heap, &env).unwrap();
        let q = person_obj(&mut heap, "Person", "p2");
        m.insert("hypothetical", q, &heap, &env).unwrap();
        assert_eq!(m.extent("persons").unwrap().len(), 1);
        assert_eq!(m.extent("hypothetical").unwrap().len(), 1);
        assert!(!m.extent("persons").unwrap().contains(q));
    }

    #[test]
    fn transient_extents_drop_at_persistence_time() {
        let env = env();
        let mut heap = Heap::new();
        let mut m = ExtentManager::new();
        m.create("durable", Type::named("Person"), false).unwrap();
        m.create("memo", Type::named("Person"), true).unwrap();
        let p = person_obj(&mut heap, "Person", "p");
        m.insert("memo", p, &heap, &env).unwrap();
        m.drop_transient();
        assert!(m.extent("memo").is_err());
        assert!(m.extent("durable").is_ok());
    }

    #[test]
    fn duplicate_extent_names_rejected() {
        let mut m = ExtentManager::new();
        m.create("e", Type::Int, false).unwrap();
        assert!(matches!(
            m.create("e", Type::Int, false),
            Err(CoreError::ExtentExists(_))
        ));
        assert!(matches!(
            m.extent("missing"),
            Err(CoreError::UnknownExtent(_))
        ));
    }

    #[test]
    fn independent_extents_may_violate_inclusion() {
        let env = env();
        let mut heap = Heap::new();
        let mut m = ExtentManager::new(); // no cascade
        m.create("persons", Type::named("Person"), false).unwrap();
        m.create("employees", Type::named("Employee"), false)
            .unwrap();
        let e = person_obj(&mut heap, "Employee", "e");
        m.insert("employees", e, &heap, &env).unwrap();
        // e is an Employee but not in persons: inclusion violated — and
        // the checker reports it.
        assert_eq!(
            m.check_inclusions(&env),
            Some(("employees".to_string(), "persons".to_string()))
        );
    }

    #[test]
    fn cascading_insert_loop_does_o_types_structural_walks() {
        // 10k cascading inserts over a 3-extent hierarchy: every subtype
        // question is one of ≤ 9 distinct (type, type) pairs, so the memo
        // table must bound the structural walks by the *type* count — not
        // the insert count.
        let env = env();
        let mut heap = Heap::new();
        let mut m = ExtentManager::with_cascade();
        m.create("persons", Type::named("Person"), false).unwrap();
        m.create("employees", Type::named("Employee"), false)
            .unwrap();
        m.create("managers", Type::named("Manager"), false).unwrap();
        let misses_before = env.subtype_cache().misses();
        for i in 0..10_000 {
            let ty = ["Person", "Employee", "Manager"][i % 3];
            let extent = ["persons", "employees", "managers"][i % 3];
            let oid = person_obj(&mut heap, ty, &format!("o{i}"));
            m.insert(extent, oid, &heap, &env).unwrap();
        }
        let walks = env.subtype_cache().misses() - misses_before;
        assert!(
            walks <= 9,
            "expected at most one structural walk per (type, type) pair, got {walks}"
        );
        assert!(m.check_inclusions(&env).is_none());
    }

    #[test]
    fn typed_list_index_agrees_with_scan() {
        let env = env();
        let dynamics: Vec<DynValue> = vec![
            DynValue::new(
                Type::named("Person"),
                Value::record([("Name", Value::str("p"))]),
            ),
            DynValue::new(
                Type::named("Employee"),
                Value::record([("Name", Value::str("e")), ("Empno", Value::Int(1))]),
            ),
            DynValue::new(Type::Int, Value::Int(1)),
            DynValue::new(
                Type::named("Employee"),
                Value::record([("Name", Value::str("f")), ("Empno", Value::Int(2))]),
            ),
        ];
        let idx = TypedListIndex::build(&dynamics);
        assert_eq!(idx.distinct_types(), 3);
        for bound in [
            Type::named("Person"),
            Type::named("Employee"),
            Type::Int,
            Type::Top,
        ] {
            let via_index = idx.query(&bound, &env);
            let via_scan: Vec<usize> = dynamics
                .iter()
                .enumerate()
                .filter(|(_, d)| dbpl_types::is_subtype(&d.ty, &bound, &env))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(via_index, via_scan, "bound {bound}");
        }
    }

    #[test]
    fn prune_dangling_drops_members_without_objects() {
        let env = env();
        let mut heap = Heap::new();
        let live = heap.alloc(
            Type::named("Person"),
            Value::record([("Name", Value::str("ok"))]),
        );
        let doomed = heap.alloc(
            Type::named("Person"),
            Value::record([("Name", Value::str("gone"))]),
        );
        let mut m = ExtentManager::new();
        m.create("persons", Type::named("Person"), false).unwrap();
        m.insert("persons", live, &heap, &env).unwrap();
        m.insert("persons", doomed, &heap, &env).unwrap();
        heap.remove(doomed);
        let pruned = m.prune_dangling(&heap);
        assert_eq!(pruned, vec![("persons".to_string(), doomed)]);
        let e = m.extent("persons").unwrap();
        assert!(e.contains(live) && !e.contains(doomed));
        assert!(m.prune_dangling(&heap).is_empty());
    }
}
