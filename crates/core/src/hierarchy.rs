//! Deriving the class hierarchy from the type hierarchy.
//!
//! The paper: "the class hierarchy can be derived from the type
//! hierarchy" — no separate declaration of classes is needed. Given a
//! [`TypeEnv`], [`ClassHierarchy::derive`] computes the Hasse diagram of
//! the named types under the subtype order (respecting the environment's
//! policy, so an Adaplex-style environment yields its declared hierarchy
//! and an Amber-style one its structural hierarchy).

use dbpl_types::{is_equiv, is_proper_subtype, Name, TypeEnv};
use std::collections::{BTreeMap, BTreeSet};

/// The Hasse diagram of named types under `≤`.
#[derive(Debug, Clone, Default)]
pub struct ClassHierarchy {
    /// Direct supertypes (covers) of each name.
    parents: BTreeMap<Name, BTreeSet<Name>>,
    /// Direct subtypes of each name.
    children: BTreeMap<Name, BTreeSet<Name>>,
    names: BTreeSet<Name>,
}

impl ClassHierarchy {
    /// Compute the hierarchy for every name declared in `env`.
    ///
    /// Equivalent (mutually subtyped) names are treated as distinct nodes
    /// with edges in neither direction (they are aliases, not sub-classes).
    pub fn derive(env: &TypeEnv) -> ClassHierarchy {
        let names: Vec<Name> = env.names().cloned().collect();
        let named = |n: &str| dbpl_types::Type::named(n);
        // All proper-subtype pairs (a < b), excluding equivalences.
        let mut lt: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (i, a) in names.iter().enumerate() {
            for (j, b) in names.iter().enumerate() {
                if i != j
                    && is_proper_subtype(&named(a), &named(b), env)
                    && !is_equiv(&named(a), &named(b), env)
                {
                    lt.insert((i, j));
                }
            }
        }
        // Transitive reduction: keep (a,b) unless some c has a<c<b.
        let mut parents: BTreeMap<Name, BTreeSet<Name>> = BTreeMap::new();
        let mut children: BTreeMap<Name, BTreeSet<Name>> = BTreeMap::new();
        for &(i, j) in &lt {
            let covered = (0..names.len())
                .any(|k| k != i && k != j && lt.contains(&(i, k)) && lt.contains(&(k, j)));
            if !covered {
                parents
                    .entry(names[i].clone())
                    .or_default()
                    .insert(names[j].clone());
                children
                    .entry(names[j].clone())
                    .or_default()
                    .insert(names[i].clone());
            }
        }
        ClassHierarchy {
            parents,
            children,
            names: names.into_iter().collect(),
        }
    }

    /// Every name in the hierarchy.
    pub fn names(&self) -> impl Iterator<Item = &Name> {
        self.names.iter()
    }

    /// Direct superclasses (covers).
    pub fn parents(&self, name: &str) -> impl Iterator<Item = &Name> {
        self.parents.get(name).into_iter().flatten()
    }

    /// Direct subclasses.
    pub fn children(&self, name: &str) -> impl Iterator<Item = &Name> {
        self.children.get(name).into_iter().flatten()
    }

    /// All strict ancestors.
    pub fn ancestors(&self, name: &str) -> BTreeSet<Name> {
        let mut out = BTreeSet::new();
        let mut stack: Vec<&Name> = self.parents(name).collect();
        while let Some(n) = stack.pop() {
            if out.insert(n.clone()) {
                stack.extend(self.parents(n));
            }
        }
        out
    }

    /// All strict descendants.
    pub fn descendants(&self, name: &str) -> BTreeSet<Name> {
        let mut out = BTreeSet::new();
        let mut stack: Vec<&Name> = self.children(name).collect();
        while let Some(n) = stack.pop() {
            if out.insert(n.clone()) {
                stack.extend(self.children(n));
            }
        }
        out
    }

    /// Names with no superclass.
    pub fn roots(&self) -> Vec<&Name> {
        self.names
            .iter()
            .filter(|n| self.parents(n).next().is_none())
            .collect()
    }

    /// Render as Graphviz DOT (edges point from subclass to superclass).
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph classes {\n  rankdir=BT;\n");
        for n in &self.names {
            s.push_str(&format!("  \"{n}\";\n"));
        }
        for (child, ps) in &self.parents {
            for p in ps {
                s.push_str(&format!("  \"{child}\" -> \"{p}\";\n"));
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpl_types::parse_type;

    fn env() -> TypeEnv {
        let mut e = TypeEnv::new();
        e.declare("Person", parse_type("{Name: Str}").unwrap())
            .unwrap();
        e.declare("Employee", parse_type("{Name: Str, Empno: Int}").unwrap())
            .unwrap();
        e.declare("Student", parse_type("{Name: Str, Gpa: Float}").unwrap())
            .unwrap();
        e.declare(
            "WorkingStudent",
            parse_type("{Name: Str, Empno: Int, Gpa: Float}").unwrap(),
        )
        .unwrap();
        e.declare("Thing", parse_type("{}").unwrap()).unwrap();
        e
    }

    #[test]
    fn hasse_diagram_is_the_transitive_reduction() {
        let h = ClassHierarchy::derive(&env());
        // WorkingStudent covers are Employee and Student, NOT Person.
        let ps: Vec<&String> = h.parents("WorkingStudent").collect();
        assert_eq!(ps.len(), 2);
        assert!(ps.contains(&&"Employee".to_string()));
        assert!(ps.contains(&&"Student".to_string()));
        // Person's direct parent is Thing (the empty record).
        assert_eq!(
            h.parents("Person").collect::<Vec<_>>(),
            [&"Thing".to_string()]
        );
    }

    #[test]
    fn ancestors_and_descendants_are_transitive() {
        let h = ClassHierarchy::derive(&env());
        let anc = h.ancestors("WorkingStudent");
        assert!(anc.contains("Person") && anc.contains("Thing"));
        let desc = h.descendants("Person");
        assert_eq!(
            desc,
            ["Employee", "Student", "WorkingStudent"]
                .iter()
                .map(|s| s.to_string())
                .collect()
        );
    }

    #[test]
    fn roots_have_no_parents() {
        let h = ClassHierarchy::derive(&env());
        assert_eq!(h.roots(), [&"Thing".to_string()]);
    }

    #[test]
    fn declared_policy_hierarchy_differs() {
        use dbpl_types::SubtypePolicy;
        let mut e = TypeEnv::with_policy(SubtypePolicy::Declared);
        e.declare("Person", parse_type("{Name: Str}").unwrap())
            .unwrap();
        e.declare("Employee", parse_type("{Name: Str, Empno: Int}").unwrap())
            .unwrap();
        e.declare("Impostor", parse_type("{Name: Str, Empno: Int}").unwrap())
            .unwrap();
        e.declare_subtype("Employee", "Person").unwrap();
        let h = ClassHierarchy::derive(&e);
        assert_eq!(
            h.parents("Employee").collect::<Vec<_>>(),
            [&"Person".to_string()]
        );
        // Impostor is structurally identical to Employee but declared
        // nothing: it floats free under the Adaplex discipline.
        assert_eq!(h.parents("Impostor").count(), 0);
    }

    #[test]
    fn aliases_produce_no_edges() {
        let mut e = TypeEnv::new();
        e.declare("A", parse_type("{x: Int}").unwrap()).unwrap();
        e.declare("B", parse_type("{x: Int}").unwrap()).unwrap();
        let h = ClassHierarchy::derive(&e);
        assert_eq!(h.parents("A").count(), 0);
        assert_eq!(h.parents("B").count(), 0);
    }

    #[test]
    fn dot_output_contains_every_edge() {
        let h = ClassHierarchy::derive(&env());
        let dot = h.to_dot();
        assert!(dot.contains("\"Employee\" -> \"Person\""));
        assert!(dot.contains("\"WorkingStudent\" -> \"Student\""));
        assert!(
            !dot.contains("\"WorkingStudent\" -> \"Person\""),
            "reduced edge absent"
        );
    }
}
