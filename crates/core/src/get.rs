//! The generic extraction function `Get` and its result packages.
//!
//! The paper's central technical move: instead of per-type functions
//!
//! ```text
//! function getPersons(d: Database): PersonList;
//! function getEmployees(d: Database): EmployeeList;
//! ```
//!
//! a *single* generic function
//!
//! ```text
//! Get : ∀t. Database → List[∃t' ≤ t]
//! ```
//!
//! whose result elements are *existential packages*: "there exists a
//! subtype t of Employee such that o has type t … we don't know what the
//! type or representation of o is, all we know is that we can perform on o
//! any operation associated with the type Employee."
//!
//! [`ExistsPkg`] realizes exactly that: the package carries its witness
//! type and its value, but the value is only *usable* through the bound —
//! [`ExistsPkg::open_at`] type-checks the opening. The static type of the
//! whole operation ([`get_signature`]) is expressible in `dbpl-types`, so
//! "the use of this function can be type-checked statically, even though a
//! certain amount of dynamic type-checking may be needed in the
//! implementation" — the dynamic part being the subtype test per scanned
//! element.

use crate::error::CoreError;
use dbpl_types::{is_subtype, is_subtype_uncached, Type, TypeEnv};
use dbpl_values::{conforms, DynValue, Heap, Mode, Value};

/// An existential package `∃t' ≤ bound. t'`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExistsPkg {
    /// The package's *bound*: the type the caller asked for.
    pub bound: Type,
    /// The hidden witness: the value's actual (more specific) type.
    witness: Type,
    /// The packaged value.
    value: Value,
}

impl ExistsPkg {
    /// Package a value with its witness type under a bound. Fails unless
    /// `witness ≤ bound` — packages cannot lie.
    pub fn seal(
        witness: Type,
        value: Value,
        bound: Type,
        env: &TypeEnv,
    ) -> Result<ExistsPkg, CoreError> {
        if !is_subtype(&witness, &bound, env) {
            return Err(CoreError::Invalid(format!(
                "cannot seal: witness {witness} is not a subtype of bound {bound}"
            )));
        }
        Ok(ExistsPkg {
            bound,
            witness,
            value,
        })
    }

    /// The hidden witness type (inspection is allowed — Amber's `typeOf` —
    /// but values can only be *used* through a checked opening).
    pub fn witness(&self) -> &Type {
        &self.witness
    }

    /// Open the package at a requested type: succeeds iff the package's
    /// bound is a subtype of the request, so everything the requested
    /// interface offers is supported. This is the "use at bound" rule.
    pub fn open_at(&self, request: &Type, env: &TypeEnv) -> Result<&Value, CoreError> {
        if is_subtype(&self.bound, request, env) {
            Ok(&self.value)
        } else {
            Err(CoreError::Invalid(format!(
                "package bound {} does not support interface {request}",
                self.bound
            )))
        }
    }

    /// Open at the package's own bound (always succeeds).
    pub fn open(&self) -> &Value {
        &self.value
    }

    /// Re-seal at a *wider* bound (existential subsumption:
    /// `∃t ≤ Employee. t` can be used where `∃t ≤ Person. t` is wanted if
    /// `Employee ≤ Person`).
    pub fn widen(&self, bound: Type, env: &TypeEnv) -> Result<ExistsPkg, CoreError> {
        if !is_subtype(&self.bound, &bound, env) {
            return Err(CoreError::Invalid(format!(
                "cannot widen {} to unrelated bound {bound}",
                self.bound
            )));
        }
        Ok(ExistsPkg {
            bound,
            witness: self.witness.clone(),
            value: self.value.clone(),
        })
    }

    /// Dissolve into a dynamic value carrying the witness type.
    pub fn into_dynamic(self) -> DynValue {
        DynValue::new(self.witness, self.value)
    }

    /// Package a value whose `witness ≤ bound` has *already* been
    /// established (by the typed-list index, whose membership is exactly
    /// that judgement). Crate-private: a public caller could seal a lie,
    /// breaking the static discipline [`ExistsPkg::seal`] enforces.
    pub(crate) fn seal_trusted(witness: Type, value: Value, bound: Type) -> ExistsPkg {
        ExistsPkg {
            bound,
            witness,
            value,
        }
    }
}

/// The static type of `Get` itself: `∀t. Database → List[∃t' ≤ t]`.
///
/// Writable — and hence statically checkable — in this type system, which
/// is the paper's point: no distinguished class construct is needed.
pub fn get_signature() -> Type {
    Type::forall(
        "t",
        None,
        Type::fun(
            Type::named("Database"),
            Type::list(Type::exists("u", Some(Type::var("t")), Type::var("u"))),
        ),
    )
}

/// Scan a list of dynamic values, extracting every element whose carried
/// type is a subtype of `bound` — the body of `Get[t]`. This is the
/// paper's straightforward implementation, with its acknowledged cost: "we
/// have to traverse the whole database … we also have the overhead of
/// having to check the structure of each value we encounter" (experiment
/// E1 measures exactly this against maintained extents and typed lists).
///
/// The structural check here is deliberately **uncached** — this function
/// is the naive baseline every fast path is differentially tested and
/// benchmarked against. [`scan_get_cached`] is the same traversal through
/// the memo table.
pub fn scan_get(dynamics: &[DynValue], bound: &Type, env: &TypeEnv) -> Vec<ExistsPkg> {
    crate::metrics::rows_scanned().add(dynamics.len() as u64);
    dynamics
        .iter()
        .filter(|d| is_subtype_uncached(&d.ty, bound, env))
        .map(|d| ExistsPkg {
            bound: bound.clone(),
            witness: d.ty.clone(),
            value: d.value.clone(),
        })
        .collect()
}

/// [`scan_get`] with the per-element subtype check routed through the
/// env's memo table: still a full traversal, but each *distinct* carried
/// type costs one structural walk ever, not one per element.
pub fn scan_get_cached(dynamics: &[DynValue], bound: &Type, env: &TypeEnv) -> Vec<ExistsPkg> {
    // One aggregate add per call (not per element): each ParScan worker
    // chunk lands here, so the chunk adds sum to the full input length.
    crate::metrics::rows_scanned().add(dynamics.len() as u64);
    dynamics
        .iter()
        .filter(|d| is_subtype(&d.ty, bound, env))
        .map(|d| ExistsPkg {
            bound: bound.clone(),
            witness: d.ty.clone(),
            value: d.value.clone(),
        })
        .collect()
}

/// Inputs smaller than this are scanned sequentially: thread spawn and
/// join overhead would otherwise dominate, and small `Get`s must keep
/// their current latency.
pub const PAR_SCAN_CUTOFF: usize = 4096;

/// [`scan_get_cached`] parallelized over chunks of the store with
/// [`std::thread::scope`]. Chunks are rejoined in order, so the result is
/// element-for-element identical to the sequential scans (differentially
/// tested). The shared memo table means the first chunk to meet a carried
/// type pays its structural walk for everyone.
pub fn scan_get_par(dynamics: &[DynValue], bound: &Type, env: &TypeEnv) -> Vec<ExistsPkg> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    scan_get_par_workers(dynamics, bound, env, workers)
}

/// [`scan_get_par`] with an explicit worker count instead of the detected
/// parallelism — the ablation/testing hook (a single-core machine can
/// still exercise the fan-out). Falls back to sequential below the cutoff
/// or with fewer than two workers.
pub fn scan_get_par_workers(
    dynamics: &[DynValue],
    bound: &Type,
    env: &TypeEnv,
    workers: usize,
) -> Vec<ExistsPkg> {
    if dynamics.len() < PAR_SCAN_CUTOFF || workers <= 1 {
        return scan_get_cached(dynamics, bound, env);
    }
    let chunk = dynamics.len().div_ceil(workers);
    // Capture the tracing context before the fan-out so worker spans hang
    // off the enclosing `get` tree instead of starting orphan traces.
    let ctx = dbpl_obs::trace::current();
    std::thread::scope(|s| {
        let handles: Vec<_> = dynamics
            .chunks(chunk)
            .map(|c| {
                s.spawn(move || {
                    let _ctx = dbpl_obs::trace::adopt(ctx);
                    let mut sp = dbpl_obs::span!("get.scan.worker");
                    sp.set_attr("rows_in", c.len());
                    scan_get_cached(c, bound, env)
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("scan worker panicked"))
            .collect()
    })
}

/// Re-check every stored dynamic against its own carried type, returning
/// `(position, cause)` for each element that no longer conforms —
/// dangling references, structurally impossible values, damage smuggled
/// in through a persistence boundary. The caller quarantines the
/// positions instead of letting one rotten element fail every `Get` that
/// reaches it.
pub fn conformance_sweep(
    dynamics: &[DynValue],
    env: &TypeEnv,
    heap: &Heap,
) -> Vec<(usize, String)> {
    dynamics
        .iter()
        .enumerate()
        .filter_map(|(pos, d)| {
            conforms(&d.value, &d.ty, env, heap, Mode::Strict)
                .err()
                .map(|e| (pos, e.to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpl_types::parse_type;

    fn env() -> TypeEnv {
        let mut e = TypeEnv::new();
        e.declare("Person", parse_type("{Name: Str}").unwrap())
            .unwrap();
        e.declare("Employee", parse_type("{Name: Str, Empno: Int}").unwrap())
            .unwrap();
        e.declare("Student", parse_type("{Name: Str, Gpa: Float}").unwrap())
            .unwrap();
        e
    }

    fn sample() -> Vec<DynValue> {
        vec![
            DynValue::new(
                Type::named("Person"),
                Value::record([("Name", Value::str("p"))]),
            ),
            DynValue::new(
                Type::named("Employee"),
                Value::record([("Name", Value::str("e")), ("Empno", Value::Int(1))]),
            ),
            DynValue::new(
                Type::named("Student"),
                Value::record([("Name", Value::str("s")), ("Gpa", Value::float(3.9))]),
            ),
            DynValue::new(Type::Int, Value::Int(42)),
        ]
    }

    #[test]
    fn get_persons_returns_larger_list_than_get_employees() {
        // "getPersons will always return a larger list than getEmployees"
        let env = env();
        let persons = scan_get(&sample(), &Type::named("Person"), &env);
        let employees = scan_get(&sample(), &Type::named("Employee"), &env);
        assert_eq!(persons.len(), 3);
        assert_eq!(employees.len(), 1);
        assert!(persons.len() > employees.len());
    }

    #[test]
    fn packages_remember_their_witness() {
        let env = env();
        let persons = scan_get(&sample(), &Type::named("Person"), &env);
        let witnesses: Vec<String> = persons.iter().map(|p| p.witness().to_string()).collect();
        assert!(witnesses.contains(&"Employee".to_string()));
        assert!(witnesses.contains(&"Student".to_string()));
    }

    #[test]
    fn open_at_enforces_the_bound() {
        let env = env();
        let employees = scan_get(&sample(), &Type::named("Employee"), &env);
        let pkg = &employees[0];
        // Usable at the bound and above...
        assert!(pkg.open_at(&Type::named("Employee"), &env).is_ok());
        assert!(pkg.open_at(&Type::named("Person"), &env).is_ok());
        // ...but not at an unrelated or narrower interface, even though
        // the witness might structurally allow it: the static discipline
        // only guarantees the bound.
        assert!(pkg.open_at(&Type::named("Student"), &env).is_err());
    }

    #[test]
    fn seal_rejects_lies() {
        let env = env();
        assert!(ExistsPkg::seal(
            Type::named("Person"),
            Value::record([("Name", Value::str("p"))]),
            Type::named("Employee"),
            &env,
        )
        .is_err());
    }

    #[test]
    fn widen_is_existential_subsumption() {
        let env = env();
        let employees = scan_get(&sample(), &Type::named("Employee"), &env);
        let widened = employees[0].widen(Type::named("Person"), &env).unwrap();
        assert_eq!(widened.bound, Type::named("Person"));
        assert_eq!(widened.witness(), employees[0].witness());
        assert!(employees[0].widen(Type::Int, &env).is_err());
    }

    #[test]
    fn get_signature_is_the_papers_type() {
        assert_eq!(
            get_signature().to_string(),
            "forall t. Database -> List[exists u <= t. u]"
        );
    }

    #[test]
    fn conformance_sweep_flags_nonconforming_elements() {
        let env = env();
        let heap = Heap::new();
        let mut dyns = sample();
        dyns.push(DynValue::new(Type::Int, Value::str("not an int")));
        let bad = conformance_sweep(&dyns, &env, &heap);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, dyns.len() - 1);
        assert!(!bad[0].1.is_empty());
        assert!(conformance_sweep(&sample(), &env, &heap).is_empty());
    }

    #[test]
    fn get_with_top_returns_everything() {
        let env = env();
        assert_eq!(scan_get(&sample(), &Type::Top, &env).len(), 4);
    }

    #[test]
    fn par_scan_counts_rows_losslessly_across_workers() {
        // Above the cutoff the scan fans out over scoped threads, each
        // worker adding its chunk length to the shared counter; the
        // aggregate must cover every row. Other tests in this binary hit
        // the same global counter concurrently, so assert with >=.
        let env = env();
        let n = PAR_SCAN_CUTOFF * 2;
        let dynamics: Vec<DynValue> = (0..n)
            .map(|i| DynValue::new(Type::Int, Value::Int(i as i64)))
            .collect();
        let c = dbpl_obs::global().counter("get.rows_scanned");
        let before = c.get();
        let got = scan_get_par(&dynamics, &Type::Int, &env);
        assert_eq!(got.len(), n);
        assert!(
            c.get() - before >= n as u64,
            "every worker chunk's rows must be counted"
        );
    }

    #[test]
    fn projecting_employee_packages_appear_in_person_result() {
        // "those records obtained by 'projecting' the Employee records
        // returned by getEmployees will always appear in the result of
        // getPersons" — here directly: every Employee package widens into
        // the Person result set.
        let env = env();
        let persons = scan_get(&sample(), &Type::named("Person"), &env);
        let employees = scan_get(&sample(), &Type::named("Employee"), &env);
        for e in &employees {
            let w = e.widen(Type::named("Person"), &env).unwrap();
            assert!(persons.iter().any(|p| p == &w));
        }
    }
}
