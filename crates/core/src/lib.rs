//! # dbpl-core — the paper's contribution, assembled
//!
//! The core of the reproduction of Buneman & Atkinson, *Inheritance and
//! Persistence in Database Programming Languages* (SIGMOD 1986): a
//! database layer in which **type, extent and persistence are separate**,
//! and in which the class machinery other designs build in is *derived*:
//!
//! * [`get`] — the generic `Get : ∀t. Database → List[∃t' ≤ t]` with
//!   existential result packages;
//! * [`extent`] — maintained extents (Taxis/Adaplex semantics under
//!   cascading, fully independent otherwise), multiple and transient
//!   extents, and the typed-list index;
//! * [`hierarchy`] — the class hierarchy derived from the type hierarchy;
//! * [`keys`] — key constraints forbidding ⊑-comparable members;
//! * [`bom`] — the bill-of-materials example with transient memo fields
//!   on persistent objects;
//! * [`instance`] — the instance-hierarchy scenarios (parking lot,
//!   price-dependent product levels);
//! * [`database`] — the facade composing all of it with every
//!   persistence model.

#![warn(missing_docs)]

pub mod bom;
pub mod database;
pub mod error;
pub mod extent;
pub mod get;
pub mod hierarchy;
pub mod instance;
pub mod keys;
mod metrics;

pub use database::{Database, GetStrategy};
pub use error::CoreError;
pub use extent::{Extent, ExtentManager, TypedListIndex};
pub use get::{
    conformance_sweep, get_signature, scan_get, scan_get_cached, scan_get_par,
    scan_get_par_workers, ExistsPkg, PAR_SCAN_CUTOFF,
};
pub use hierarchy::ClassHierarchy;
pub use keys::{KeyConstraint, KeyedSet};
