//! The [`Database`] facade: type, extent and persistence, separated but
//! composed.
//!
//! A database here is what the paper's uniform design implies:
//!
//! * a [`TypeEnv`] — the schema-as-types, whose subtype hierarchy *is* the
//!   class hierarchy;
//! * a heterogeneous store of dynamic values (the "list of dynamic
//!   values" the paper builds in Amber) plus an object [`Heap`] for
//!   identity;
//! * the generic [`Database::get`] — `Get : ∀t. Database → List[∃t' ≤ t]`
//!   — with three interchangeable implementations (scan, maintained
//!   extents, typed-list index) so their costs can be compared (E1);
//! * optional maintained extents and key constraints, available but never
//!   *required*: type, extent and persistence stay separate;
//! * bridges to every persistence model (snapshot image capture,
//!   replicating extern/intern, attachment to an intrinsic store).

use crate::error::CoreError;
use crate::extent::{ExtentManager, TypedListIndex};
use crate::get::{conformance_sweep, scan_get, scan_get_cached, scan_get_par, ExistsPkg};
use crate::hierarchy::ClassHierarchy;
use dbpl_persist::{Image, QuarantineEntry, QuarantineReason, QuarantineReport};
use dbpl_stats::StatsCatalog;
use dbpl_types::{is_subtype, Type, TypeEnv};
use dbpl_values::{conforms, DynValue, Heap, Mode, Oid, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

/// How [`Database::get_with`] locates the objects of a type. All
/// strategies return element-for-element identical results (differentially
/// tested); they differ only in cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GetStrategy {
    /// Traverse the whole dynamic store, structurally checking each
    /// element's carried type (the paper's simple, "not very efficient"
    /// solution — the naive baseline, deliberately uncached).
    Scan,
    /// The same traversal with memoized subtype verdicts: one structural
    /// walk per distinct carried type, not per element.
    CachedScan,
    /// Consult the typed-list index ("a set of statically typed lists"):
    /// touch only the lists whose carried type is a (cached) subtype of
    /// the bound. The default.
    #[default]
    TypedLists,
    /// Chunked parallel traversal over scoped threads, sharing one memo
    /// table; falls back to sequential below a cutoff.
    ParScan,
}

impl GetStrategy {
    /// The snake_case name used in metrics, span attributes, and
    /// `explain`/`explainAnalyze` output.
    pub fn name(self) -> &'static str {
        match self {
            GetStrategy::Scan => "scan",
            GetStrategy::CachedScan => "cached_scan",
            GetStrategy::TypedLists => "typed_lists",
            GetStrategy::ParScan => "par_scan",
        }
    }
}

/// A database: types + heterogeneous values + optional extents + keys.
///
/// The bulky components (heap, dynamic store, typed-list index, extents,
/// bindings) live behind [`Arc`]s with copy-on-write mutation
/// (`Arc::make_mut`), so [`Database::clone`] is O(1): it shares every
/// component with the original. This is what makes epoch-stamped MVCC
/// snapshots cheap — the engine clones the published database per reader
/// and per writer frame, and only a component a writer actually touches
/// is copied (once per exclusive lineage, not per clone). The public API
/// is unchanged: `&mut self` methods transparently un-share first.
#[derive(Debug, Clone, Default)]
pub struct Database {
    env: TypeEnv,
    heap: Arc<Heap>,
    dynamics: Arc<Vec<DynValue>>,
    index: Arc<TypedListIndex>,
    extents: Arc<ExtentManager>,
    bindings: Arc<BTreeMap<String, DynValue>>,
    /// The strategy [`Database::get`] uses; the naive paths stay
    /// reachable through this flag so benches can measure both.
    get_strategy: GetStrategy,
    /// Damaged units and elements skipped instead of failing queries —
    /// the per-database quarantine report.
    quarantined: Vec<QuarantineEntry>,
    /// Positions in `dynamics` excluded from every `Get`. Positions, not
    /// removals: the typed-list index stores positions, so removing an
    /// element would shift everything after it.
    quarantined_positions: BTreeSet<usize>,
    /// The maintained statistics catalog: updated in lockstep with the
    /// dynamic store ([`Database::put`] observes, quarantine removes), so
    /// every snapshot, fork, and rolled-back frame carries a catalog
    /// consistent with its own rows — the incremental ≡ recomputed
    /// invariant [`Database::stats_consistent`] checks.
    stats: Arc<StatsCatalog>,
    /// Inverted so `Default` means *enabled*: statistics maintenance is
    /// on unless [`Database::set_stats_enabled`] turned it off (benches
    /// measure both sides of that switch).
    stats_off: bool,
}

impl Database {
    /// An empty database with a structural type environment.
    pub fn new() -> Database {
        Database::default()
    }

    /// An empty database over a prepared environment.
    pub fn with_env(env: TypeEnv) -> Database {
        Database {
            env,
            ..Default::default()
        }
    }

    /// The type environment.
    pub fn env(&self) -> &TypeEnv {
        &self.env
    }

    /// Mutable access to the type environment.
    pub fn env_mut(&mut self) -> &mut TypeEnv {
        &mut self.env
    }

    /// Declare a named type.
    pub fn declare_type(&mut self, name: impl Into<String>, ty: Type) -> Result<(), CoreError> {
        self.env.declare(name, ty)?;
        Ok(())
    }

    /// The object heap.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Mutable access to the heap (copy-on-write: un-shares first).
    pub fn heap_mut(&mut self) -> &mut Heap {
        Arc::make_mut(&mut self.heap)
    }

    /// Allocate an object with identity.
    pub fn alloc(&mut self, ty: Type, value: Value) -> Result<Oid, CoreError> {
        conforms(&value, &ty, &self.env, &self.heap, Mode::Strict)?;
        Ok(Arc::make_mut(&mut self.heap).alloc(ty, value))
    }

    /// The extent manager.
    pub fn extents(&self) -> &ExtentManager {
        &self.extents
    }

    /// Mutable access to the extent manager (copy-on-write).
    pub fn extents_mut(&mut self) -> &mut ExtentManager {
        Arc::make_mut(&mut self.extents)
    }

    /// Switch extent insertion to the cascading (Taxis/Adaplex) semantics.
    pub fn enable_extent_cascade(&mut self) {
        let old = std::mem::take(&mut self.extents);
        let mut fresh = ExtentManager::with_cascade();
        // Two passes: every extent must exist before members are
        // re-inserted, or the cascade would miss late-created targets.
        for e in old.iter() {
            fresh
                .create(
                    e.name().to_string(),
                    e.elem_type().clone(),
                    e.is_transient(),
                )
                .expect("names were unique");
        }
        for e in old.iter() {
            for m in e.members() {
                // Re-inserting under cascade re-establishes inclusions.
                let _ = fresh.insert(e.name(), m, &self.heap, &self.env);
            }
        }
        self.extents = Arc::new(fresh);
    }

    /// Insert a value into the heterogeneous dynamic store, checked
    /// against its declared type. "This 'database' is completely
    /// unconstrained: we can put any dynamic value in it."
    pub fn put(&mut self, ty: Type, value: Value) -> Result<usize, CoreError> {
        conforms(&value, &ty, &self.env, &self.heap, Mode::Strict)?;
        let pos = self.dynamics.len();
        Arc::make_mut(&mut self.index).add(ty.clone(), pos);
        let d = DynValue::new(ty, value);
        if !self.stats_off {
            Arc::make_mut(&mut self.stats).observe_put(&d);
            crate::metrics::stats_observed_puts().inc();
        }
        Arc::make_mut(&mut self.dynamics).push(d);
        Ok(pos)
    }

    /// Insert an already-dynamic value.
    pub fn put_dyn(&mut self, d: DynValue) -> Result<usize, CoreError> {
        self.put(d.ty, d.value)
    }

    /// The raw dynamic store.
    pub fn dynamics(&self) -> &[DynValue] {
        &self.dynamics
    }

    /// Number of stored dynamic values.
    pub fn len(&self) -> usize {
        self.dynamics.len()
    }

    /// Is the dynamic store empty?
    pub fn is_empty(&self) -> bool {
        self.dynamics.is_empty()
    }

    /// `Get[t](db)`: every stored value whose type is a subtype of
    /// `bound`, as existential packages, using the database's configured
    /// strategy (indexed typed lists unless reconfigured with
    /// [`Database::set_get_strategy`]).
    pub fn get(&self, bound: &Type) -> Vec<ExistsPkg> {
        self.get_with(bound, self.get_strategy)
    }

    /// The strategy [`Database::get`] currently uses.
    pub fn get_strategy(&self) -> GetStrategy {
        self.get_strategy
    }

    /// Configure the strategy [`Database::get`] uses (e.g. switch back to
    /// the naive scan to measure it).
    pub fn set_get_strategy(&mut self, strategy: GetStrategy) {
        self.get_strategy = strategy;
    }

    /// `Get` with an explicit implementation strategy; all strategies
    /// return the same packages (asserted by the test suite), at different
    /// costs (measured by E1). Quarantined elements are skipped by every
    /// strategy — a damaged element degrades the result, never the query.
    pub fn get_with(&self, bound: &Type, strategy: GetStrategy) -> Vec<ExistsPkg> {
        let started = Instant::now();
        let mut root = dbpl_obs::span!("get");
        root.set_attr("strategy", strategy.name());
        crate::metrics::strategy_counter(strategy).inc();
        // Fast path: no quarantine, scan the store as-is.
        let filtered;
        let dynamics: &[DynValue] = {
            let mut plan = dbpl_obs::span!("get.plan");
            plan.set_attr("store_rows", self.dynamics.len());
            plan.set_attr("quarantined", self.quarantined_positions.len());
            if self.quarantined_positions.is_empty() {
                &self.dynamics
            } else {
                filtered = self.healthy_dynamics();
                &filtered
            }
        };
        let out = match strategy {
            GetStrategy::Scan | GetStrategy::CachedScan | GetStrategy::ParScan => {
                let mut scan = dbpl_obs::span!("get.scan");
                scan.set_attr("rows_in", dynamics.len());
                let out = match strategy {
                    GetStrategy::Scan => scan_get(dynamics, bound, &self.env),
                    GetStrategy::CachedScan => scan_get_cached(dynamics, bound, &self.env),
                    _ => scan_get_par(dynamics, bound, &self.env),
                };
                scan.set_attr("rows_out", out.len());
                out
            }
            GetStrategy::TypedLists => {
                let candidates = {
                    let mut index = dbpl_obs::span!("get.index");
                    let candidates = self.index.query(bound, &self.env);
                    index.set_attr("candidates", candidates.len());
                    candidates
                };
                let mut seal = dbpl_obs::span!("get.seal");
                let out: Vec<ExistsPkg> = candidates
                    .into_iter()
                    .filter(|i| !self.quarantined_positions.contains(i))
                    .map(|i| {
                        let d = &self.dynamics[i];
                        // Index membership *is* the `witness ≤ bound`
                        // judgement, so no per-element re-verification.
                        ExistsPkg::seal_trusted(d.ty.clone(), d.value.clone(), bound.clone())
                    })
                    .collect();
                seal.set_attr("rows_out", out.len());
                out
            }
        };
        root.set_attr("rows_out", out.len());
        crate::metrics::rows_sealed().add(out.len() as u64);
        // One workload-log record per executed query: the fingerprint
        // matches the `get.strategy.<name>` counter bumped above, the
        // duration matches what the `span.get` histogram observes.
        dbpl_stats::query_log().record(dbpl_stats::QueryRecord {
            fingerprint: dbpl_stats::fingerprint_get(strategy.name()),
            rows_in: self.dynamics.len() as u64,
            rows_out: out.len() as u64,
            dur_us: u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
        });
        out
    }

    /// The dynamic store with quarantined positions filtered out.
    fn healthy_dynamics(&self) -> Vec<DynValue> {
        self.dynamics
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.quarantined_positions.contains(i))
            .map(|(_, d)| d.clone())
            .collect()
    }

    /// Record a damaged unit skipped at a persistence boundary (e.g. an
    /// undecodable `.dyn` package) in this database's quarantine report.
    pub fn record_quarantine(&mut self, handle: impl Into<String>, cause: impl Into<String>) {
        let entry = QuarantineEntry {
            handle: handle.into(),
            cause: cause.into(),
            reason: QuarantineReason::Undecodable,
        };
        dbpl_obs::emit(dbpl_obs::Event::Quarantine {
            handle: entry.handle.clone(),
            reason: entry.cause.clone(),
        });
        self.quarantined.push(entry);
    }

    /// Quarantine a position in the dynamic store: every `Get` skips it
    /// from now on, and the report gains an entry naming it.
    pub fn quarantine_position(&mut self, pos: usize, cause: impl Into<String>) {
        if pos < self.dynamics.len() && self.quarantined_positions.insert(pos) {
            if !self.stats_off {
                // The element is still readable here (quarantine excludes,
                // never erases), so the catalog can retract exactly what
                // `put` once observed for it.
                let d = self.dynamics[pos].clone();
                Arc::make_mut(&mut self.stats).observe_remove(&d);
                crate::metrics::stats_observed_removes().inc();
            }
            let entry = QuarantineEntry {
                handle: format!("dynamics[{pos}]"),
                cause: cause.into(),
                reason: QuarantineReason::Undecodable,
            };
            dbpl_obs::emit(dbpl_obs::Event::Quarantine {
                handle: entry.handle.clone(),
                reason: entry.cause.clone(),
            });
            self.quarantined.push(entry);
        }
    }

    /// The quarantine report: everything this database skipped instead of
    /// failing on (count, handles, causes).
    pub fn quarantine_report(&self) -> QuarantineReport {
        QuarantineReport {
            entries: self.quarantined.clone(),
        }
    }

    /// Re-verify every stored dynamic against its carried type and
    /// quarantine the ones that no longer conform (dangling references,
    /// structural damage). Returns how many new positions were
    /// quarantined. Queries keep working on the healthy remainder.
    pub fn verify_dynamics(&mut self) -> usize {
        let bad = conformance_sweep(&self.dynamics, &self.env, &self.heap);
        let mut added = 0;
        for (pos, cause) in bad {
            if !self.quarantined_positions.contains(&pos) {
                self.quarantine_position(pos, cause);
                added += 1;
            }
        }
        added
    }

    /// The class hierarchy — derived from the type hierarchy, on demand.
    pub fn class_hierarchy(&self) -> ClassHierarchy {
        ClassHierarchy::derive(&self.env)
    }

    /// The maintained statistics catalog (carried-type granularity).
    pub fn stats_catalog(&self) -> &StatsCatalog {
        &self.stats
    }

    /// Is incremental statistics maintenance on?
    pub fn stats_enabled(&self) -> bool {
        !self.stats_off
    }

    /// Switch statistics maintenance. Re-enabling after a disabled
    /// stretch runs [`Database::analyze`] so the catalog catches up with
    /// whatever the store did unobserved.
    pub fn set_stats_enabled(&mut self, on: bool) {
        if on && self.stats_off {
            self.stats_off = false;
            self.analyze();
        } else {
            self.stats_off = !on;
        }
    }

    /// The healthy rows: the dynamic store minus quarantined positions —
    /// exactly what queries see and what the catalog describes.
    fn healthy_rows(&self) -> impl Iterator<Item = &DynValue> {
        self.dynamics
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.quarantined_positions.contains(i))
            .map(|(_, d)| d)
    }

    /// Full statistics rebuild over the healthy store — the `analyze(db)`
    /// builtin. The maintained catalog is replaced wholesale; afterwards
    /// [`Database::stats_consistent`] holds by construction.
    pub fn analyze(&mut self) -> &StatsCatalog {
        self.stats = Arc::new(StatsCatalog::rebuild(self.healthy_rows()));
        crate::metrics::stats_rebuilds().inc();
        &self.stats
    }

    /// Does the incrementally maintained catalog equal a full rebuild
    /// over the healthy rows? Always true while maintenance stays
    /// enabled — the differential invariant `workload_check` and the
    /// stats proptests assert.
    pub fn stats_consistent(&self) -> bool {
        *self.stats == StatsCatalog::rebuild(self.healthy_rows())
    }

    /// The rolled-up statistics of the extent at `bound` under this
    /// database's subtype judgement: total rows, fully-ground rows,
    /// subtype fan-out, and merged per-path sketches.
    pub fn extent_stats(&self, bound: &Type) -> dbpl_stats::ExtentStats {
        self.stats
            .rollup(bound, |ty, b| is_subtype(ty, b, &self.env))
    }

    /// Bind a top-level name to a dynamic value (session variables; these
    /// are what an all-or-nothing image captures).
    pub fn bind(&mut self, name: impl Into<String>, d: DynValue) {
        Arc::make_mut(&mut self.bindings).insert(name.into(), d);
    }

    /// Look up a top-level binding.
    pub fn binding(&self, name: &str) -> Option<&DynValue> {
        self.bindings.get(name)
    }

    /// Capture an all-or-nothing [`Image`] of this database. Transient
    /// extents are excluded (they "are not required to persist"); the
    /// dynamic store rides along as a binding so nothing else is lost.
    pub fn capture_image(&self) -> Image {
        let mut bindings = (*self.bindings).clone();
        // The dynamic store itself is a value: a list of dynamics.
        bindings.insert(
            "__dynamics".to_string(),
            DynValue::new(
                Type::list(Type::Dynamic),
                Value::List(
                    self.dynamics
                        .iter()
                        .map(|d| Value::Dyn(Box::new(d.clone())))
                        .collect(),
                ),
            ),
        );
        Image::capture(&self.env, &self.heap, &bindings)
    }

    /// Persist this database's durable state into an intrinsic store (one
    /// handle per concern), ready for [`Database::load_from_intrinsic`].
    /// Transient extents are not saved; maintained extents ride along as
    /// data. Call `store.commit()` afterwards to make it durable.
    pub fn save_to_intrinsic(
        &self,
        store: &mut dbpl_persist::IntrinsicStore,
    ) -> Result<(), CoreError> {
        // The whole durable state is one image value: reuse the snapshot
        // encoding as the handle payload, so principle 2 (type travels
        // with value) holds for the database as a unit.
        let img = self.capture_image();
        let bytes = img.encode();
        store.set_handle(
            "__database_image",
            Type::Str,
            Value::Str(bytes.iter().map(|b| format!("{b:02x}")).collect()),
        );
        Ok(())
    }

    /// Load a database previously saved with
    /// [`Database::save_to_intrinsic`].
    pub fn load_from_intrinsic(
        store: &dbpl_persist::IntrinsicStore,
    ) -> Result<Database, CoreError> {
        let (_, v) = store
            .handle("__database_image")
            .ok_or_else(|| CoreError::Invalid("no database image in store".into()))?;
        let hex = v
            .as_str()
            .ok_or_else(|| CoreError::Invalid("database image is not a string".into()))?;
        let bytes: Vec<u8> = (0..hex.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&hex[i..i + 2], 16))
            .collect::<Result<_, _>>()
            .map_err(|_| CoreError::Invalid("corrupt database image".into()))?;
        let img = Image::decode(&bytes).map_err(CoreError::Persist)?;
        Database::from_image(&img)
    }

    /// Fork a *hypothetical state*: an independent copy to "experiment
    /// with hypothetical states of the database" (one of the paper's
    /// motivations for multiple extents). Mutations to the fork leave the
    /// original untouched; [`Database::adopt`] commits a hypothesis back.
    pub fn fork(&self) -> Database {
        self.clone()
    }

    /// Adopt a hypothetical state: replace this database's contents with
    /// the fork's. (A deliberate whole-state commit — partial merges are
    /// the application's business.)
    pub fn adopt(&mut self, hypothesis: Database) {
        *self = hypothesis;
    }

    /// Restore a database from an image.
    pub fn from_image(img: &Image) -> Result<Database, CoreError> {
        let (env, heap, mut bindings) = img.restore()?;
        let mut dynamics = Vec::new();
        if let Some(d) = bindings.remove("__dynamics") {
            if let Value::List(xs) = d.value {
                for x in xs {
                    if let Value::Dyn(b) = x {
                        dynamics.push(*b);
                    }
                }
            }
        }
        let index = TypedListIndex::build(&dynamics);
        // A restored database re-derives its catalog from the restored
        // rows — self-description survives the persistence boundary
        // without the image format having to carry statistics.
        let stats = StatsCatalog::rebuild(dynamics.iter());
        Ok(Database {
            env,
            heap: Arc::new(heap),
            dynamics: Arc::new(dynamics),
            index: Arc::new(index),
            extents: Arc::new(ExtentManager::new()),
            bindings: Arc::new(bindings),
            get_strategy: GetStrategy::default(),
            quarantined: Vec::new(),
            quarantined_positions: BTreeSet::new(),
            stats: Arc::new(stats),
            stats_off: false,
        })
    }

    /// Do this database and `other` share the same dynamic-store storage?
    /// True right after a [`Database::clone`] (or [`Database::fork`]),
    /// false once either side's store has been written — the observable
    /// face of copy-on-write snapshots, used by tests and the engine to
    /// assert that snapshot capture is O(1).
    pub fn shares_storage_with(&self, other: &Database) -> bool {
        Arc::ptr_eq(&self.dynamics, &other.dynamics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbpl_types::parse_type;

    fn db() -> Database {
        let mut db = Database::new();
        db.declare_type("Person", parse_type("{Name: Str}").unwrap())
            .unwrap();
        db.declare_type("Employee", parse_type("{Name: Str, Empno: Int}").unwrap())
            .unwrap();
        db.put(
            Type::named("Person"),
            Value::record([("Name", Value::str("p"))]),
        )
        .unwrap();
        db.put(
            Type::named("Employee"),
            Value::record([("Name", Value::str("e")), ("Empno", Value::Int(1))]),
        )
        .unwrap();
        db.put(Type::Int, Value::Int(7)).unwrap();
        db
    }

    #[test]
    fn put_is_typechecked() {
        let mut d = db();
        assert!(d
            .put(
                Type::named("Employee"),
                Value::record([("Name", Value::str("x"))])
            )
            .is_err());
        assert!(d.put(Type::named("Ghost"), Value::Unit).is_err());
    }

    #[test]
    fn get_strategies_agree() {
        let d = db();
        for bound in [
            Type::named("Person"),
            Type::named("Employee"),
            Type::Int,
            Type::Top,
        ] {
            let scan = d.get_with(&bound, GetStrategy::Scan);
            for fast in [
                GetStrategy::CachedScan,
                GetStrategy::TypedLists,
                GetStrategy::ParScan,
            ] {
                let got = d.get_with(&bound, fast);
                assert_eq!(scan, got, "{fast:?} disagrees with scan at {bound}");
            }
        }
    }

    #[test]
    fn default_get_is_indexed_and_reconfigurable() {
        let mut d = db();
        assert_eq!(d.get_strategy(), GetStrategy::TypedLists);
        let fast = d.get(&Type::named("Person"));
        d.set_get_strategy(GetStrategy::Scan);
        assert_eq!(d.get_strategy(), GetStrategy::Scan);
        assert_eq!(d.get(&Type::named("Person")), fast);
    }

    #[test]
    fn get_respects_hierarchy() {
        let d = db();
        assert_eq!(d.get(&Type::named("Person")).len(), 2);
        assert_eq!(d.get(&Type::named("Employee")).len(), 1);
        assert_eq!(d.get(&Type::Top).len(), 3);
    }

    #[test]
    fn alloc_is_typechecked() {
        let mut d = db();
        assert!(d
            .alloc(
                Type::named("Person"),
                Value::record([("Name", Value::str("ok"))])
            )
            .is_ok());
        assert!(d.alloc(Type::named("Person"), Value::Int(1)).is_err());
    }

    #[test]
    fn image_roundtrip_preserves_everything_durable() {
        let mut d = db();
        let o = d
            .alloc(
                Type::named("Person"),
                Value::record([("Name", Value::str("h"))]),
            )
            .unwrap();
        d.bind("root", DynValue::new(Type::named("Person"), Value::Ref(o)));
        d.extents_mut()
            .create("memo", Type::named("Person"), true)
            .unwrap();

        let mut before_capture = d.clone();
        before_capture.extents_mut().drop_transient();
        let img = before_capture.capture_image();
        let restored = Database::from_image(&img).unwrap();

        assert_eq!(restored.len(), d.len());
        assert_eq!(restored.get(&Type::named("Person")).len(), 2);
        assert!(restored.binding("root").is_some());
        let ro = restored
            .binding("root")
            .unwrap()
            .value
            .as_ref_oid()
            .unwrap();
        assert_eq!(
            restored.heap().get(ro).unwrap().value.field("Name"),
            Some(&Value::str("h"))
        );
        // The transient extent is gone; that was the point.
        assert!(restored.extents().extent("memo").is_err());
    }

    #[test]
    fn quarantined_positions_are_skipped_by_every_strategy() {
        let mut d = db();
        let before = d.get(&Type::Top).len();
        // Quarantine the Int element (position 2).
        d.quarantine_position(2, "planted damage");
        for strategy in [
            GetStrategy::Scan,
            GetStrategy::CachedScan,
            GetStrategy::TypedLists,
            GetStrategy::ParScan,
        ] {
            let got = d.get_with(&Type::Top, strategy);
            assert_eq!(got.len(), before - 1, "{strategy:?}");
            assert!(got.iter().all(|p| p.witness() != &Type::Int));
        }
        let report = d.quarantine_report();
        assert_eq!(report.len(), 1);
        assert_eq!(report.entries[0].handle, "dynamics[2]");
        assert_eq!(report.entries[0].cause, "planted damage");
        // Quarantining the same position twice does not duplicate.
        d.quarantine_position(2, "again");
        assert_eq!(d.quarantine_report().len(), 1);
    }

    #[test]
    fn verify_dynamics_quarantines_nonconforming_elements() {
        let mut d = db();
        assert_eq!(d.verify_dynamics(), 0);
        // Smuggle a dangling reference in (bypassing put's check).
        let o = d.heap_mut().alloc(Type::Int, Value::Int(5));
        d.put(Type::Int, Value::Ref(o)).unwrap();
        d.heap_mut().remove(o);
        assert_eq!(d.verify_dynamics(), 1);
        // The damaged element is named, and queries keep working.
        assert_eq!(d.quarantine_report().len(), 1);
        assert_eq!(d.get(&Type::Int).len(), 1, "healthy Int still found");
        // A second verify finds nothing new.
        assert_eq!(d.verify_dynamics(), 0);
    }

    #[test]
    fn catalog_is_maintained_by_put_and_quarantine() {
        let mut d = db();
        assert!(d.stats_enabled());
        assert!(d.stats_consistent());
        assert_eq!(d.stats_catalog().total_rows(), 3);
        // Quarantining retracts the row from the catalog...
        d.quarantine_position(2, "planted damage");
        assert_eq!(d.stats_catalog().total_rows(), 2);
        assert!(d.stats_catalog().get(&Type::Int).is_none());
        assert!(d.stats_consistent());
        // ...and a full rebuild changes nothing.
        let maintained = d.stats_catalog().clone();
        d.analyze();
        assert_eq!(*d.stats_catalog(), maintained);
    }

    #[test]
    fn extent_rollup_follows_the_subtype_hierarchy() {
        let d = db();
        let person = d.extent_stats(&Type::named("Person"));
        assert_eq!(
            (person.rows, person.fanout),
            (2, 2),
            "Employee rows roll up"
        );
        assert_eq!(person.ground_rows, 2);
        let name = person.paths.get(&dbpl_values::Path::parse("Name")).unwrap();
        assert_eq!((name.present, name.ground), (2, 2));
        let int = d.extent_stats(&Type::Int);
        assert_eq!((int.rows, int.fanout), (1, 1));
        assert_eq!(d.extent_stats(&Type::Top).rows, 3);
    }

    #[test]
    fn disabling_stats_skips_maintenance_and_reenabling_catches_up() {
        let mut d = db();
        d.set_stats_enabled(false);
        d.put(
            Type::named("Person"),
            Value::record([("Name", Value::str("unseen"))]),
        )
        .unwrap();
        assert_eq!(d.stats_catalog().total_rows(), 3, "maintenance was off");
        assert!(!d.stats_consistent());
        d.set_stats_enabled(true);
        assert!(d.stats_consistent(), "re-enabling re-analyzes");
        assert_eq!(d.stats_catalog().total_rows(), 4);
    }

    #[test]
    fn forks_carry_independent_catalogs() {
        let mut d = db();
        let mut f = d.fork();
        f.put(Type::Int, Value::Int(99)).unwrap();
        assert_eq!(f.stats_catalog().total_rows(), 4);
        assert_eq!(d.stats_catalog().total_rows(), 3, "original untouched");
        assert!(d.stats_consistent() && f.stats_consistent());
        d.adopt(f);
        assert_eq!(d.stats_catalog().total_rows(), 4);
    }

    #[test]
    fn restored_image_rederives_the_catalog() {
        let d = db();
        let img = d.capture_image();
        let restored = Database::from_image(&img).unwrap();
        assert!(restored.stats_enabled());
        assert_eq!(*restored.stats_catalog(), *d.stats_catalog());
        assert!(restored.stats_consistent());
    }

    #[test]
    fn get_records_into_the_query_log() {
        let d = db();
        let log = dbpl_stats::query_log();
        let before = log.snapshot().len();
        d.get_with(&Type::named("Person"), GetStrategy::Scan);
        let snap = log.snapshot();
        assert!(snap.len() > before);
        // Tests share the process-global log, so look for our record
        // rather than assuming it is the latest.
        assert!(
            snap.iter()
                .any(|r| r.fingerprint == "get:scan" && r.rows_in == 3 && r.rows_out == 2),
            "the Get left its record in the query log"
        );
    }

    #[test]
    fn cascade_can_be_enabled_after_the_fact() {
        let mut d = db();
        d.extents_mut()
            .create("persons", Type::named("Person"), false)
            .unwrap();
        d.extents_mut()
            .create("employees", Type::named("Employee"), false)
            .unwrap();
        let e = d
            .alloc(
                Type::named("Employee"),
                Value::record([("Name", Value::str("e")), ("Empno", Value::Int(2))]),
            )
            .unwrap();
        // Without cascade: independent.
        let heap = d.heap().clone();
        let env = d.env().clone();
        d.extents_mut().insert("employees", e, &heap, &env).unwrap();
        assert!(!d.extents().extent("persons").unwrap().contains(e));
        // Enabling cascade re-establishes the inclusion hierarchy.
        d.enable_extent_cascade();
        assert!(d.extents().extent("persons").unwrap().contains(e));
        assert!(d.extents().check_inclusions(d.env()).is_none());
    }
}
