//! Key constraints and their interaction with object-level inheritance.
//!
//! "If we want to maintain the natural identity of tuples we usually
//! impose natural or artificial key attributes on suitably chosen classes.
//! Moreover the imposition of keys will also prevent comparable values
//! (under ⊑) from coexisting in the same set. If, for example, we insist
//! that Name is a key for Person, we cannot now place two comparable
//! objects whose type is a subtype of Person in the database, for if they
//! were comparable, they would necessarily have the same key."
//!
//! [`KeyedSet`] enforces exactly this over a generalized relation: an
//! insertion whose key agrees with an existing member is rejected (so, in
//! particular, any ⊑-comparable pair with defined keys is excluded), and
//! members must *define* the key — a key constraint is a totality
//! requirement on those paths.

use crate::error::CoreError;
use dbpl_relation::GenRelation;
use dbpl_values::{get_path, leq, Path, Value};

/// A key: a set of paths that must be defined and unique.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyConstraint {
    paths: Vec<Path>,
}

impl KeyConstraint {
    /// A key over the given paths.
    pub fn new<I, P>(paths: I) -> KeyConstraint
    where
        I: IntoIterator<Item = P>,
        P: Into<Path>,
    {
        KeyConstraint {
            paths: paths.into_iter().map(Into::into).collect(),
        }
    }

    /// The key paths.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// The key value of an object: `None` if any path is undefined.
    pub fn key_of(&self, v: &Value) -> Option<Vec<Value>> {
        self.paths.iter().map(|p| get_path(v, p).cloned()).collect()
    }
}

/// A set of objects governed by a key constraint.
#[derive(Debug, Clone)]
pub struct KeyedSet {
    key: KeyConstraint,
    rel: GenRelation,
}

impl KeyedSet {
    /// An empty keyed set.
    pub fn new(key: KeyConstraint) -> KeyedSet {
        KeyedSet {
            key,
            rel: GenRelation::new(),
        }
    }

    /// The key constraint.
    pub fn key(&self) -> &KeyConstraint {
        &self.key
    }

    /// The underlying relation.
    pub fn relation(&self) -> &GenRelation {
        &self.rel
    }

    /// Members.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.rel.iter()
    }

    /// Cardinality.
    pub fn len(&self) -> usize {
        self.rel.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.rel.is_empty()
    }

    /// Insert an object. Fails if the key is undefined on it, or if an
    /// existing member carries the same key.
    pub fn insert(&mut self, v: Value) -> Result<(), CoreError> {
        let k = self.key.key_of(&v).ok_or_else(|| {
            CoreError::KeyViolation(format!(
                "object {v} does not define the key ({})",
                self.key
                    .paths
                    .iter()
                    .map(Path::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })?;
        for existing in self.rel.iter() {
            if self.key.key_of(existing).as_ref() == Some(&k) {
                return Err(CoreError::KeyViolation(format!(
                    "key {k:?} already identifies {existing}"
                )));
            }
        }
        self.rel.insert(v);
        Ok(())
    }

    /// *Update in place*: replace the member with key `k` by the join of
    /// itself and `delta` (adding information to an identified object).
    /// This is the key-respecting way to turn a Person into an Employee.
    pub fn refine(&mut self, v: &Value) -> Result<(), CoreError> {
        let k = self
            .key
            .key_of(v)
            .ok_or_else(|| CoreError::KeyViolation("refinement must define the key".into()))?;
        let target = self
            .rel
            .iter()
            .find(|e| self.key.key_of(e).as_ref() == Some(&k))
            .cloned()
            .ok_or_else(|| CoreError::KeyViolation(format!("no member with key {k:?}")))?;
        let merged = dbpl_values::join(&target, v).ok_or_else(|| {
            CoreError::KeyViolation(format!("{v} contradicts existing member {target}"))
        })?;
        let remaining: Vec<Value> = self.rel.iter().filter(|e| **e != target).cloned().collect();
        let mut rel = GenRelation::from_values(remaining);
        rel.insert(merged);
        self.rel = rel;
        Ok(())
    }

    /// Look up a member by key.
    pub fn find(&self, key: &[Value]) -> Option<&Value> {
        self.rel
            .iter()
            .find(|e| self.key.key_of(e).as_deref() == Some(key))
    }

    /// The property the paper derives: no two members are ⊑-comparable.
    pub fn no_comparable_members(&self) -> bool {
        let rows: Vec<&Value> = self.rel.iter().collect();
        for (i, a) in rows.iter().enumerate() {
            for b in &rows[i + 1..] {
                if leq(a, b) || leq(b, a) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person(name: &str) -> Value {
        Value::record([("Name", Value::str(name))])
    }
    fn employee(name: &str, no: i64) -> Value {
        Value::record([("Name", Value::str(name)), ("Empno", Value::Int(no))])
    }

    #[test]
    fn name_key_prevents_comparable_coexistence() {
        // The paper's exact example: Name is a key for Person; a Person
        // and an Employee with the same name cannot both be present.
        let mut s = KeyedSet::new(KeyConstraint::new(["Name"]));
        s.insert(person("J Doe")).unwrap();
        let err = s.insert(employee("J Doe", 1234));
        assert!(matches!(err, Err(CoreError::KeyViolation(_))));
        assert!(s.no_comparable_members());
    }

    #[test]
    fn refine_adds_information_to_the_identified_object() {
        let mut s = KeyedSet::new(KeyConstraint::new(["Name"]));
        s.insert(person("J Doe")).unwrap();
        s.refine(&employee("J Doe", 1234)).unwrap();
        assert_eq!(s.len(), 1);
        let member = s.find(&[Value::str("J Doe")]).unwrap();
        assert_eq!(member.field("Empno"), Some(&Value::Int(1234)));
    }

    #[test]
    fn refine_rejects_contradictions() {
        let mut s = KeyedSet::new(KeyConstraint::new(["Name"]));
        s.insert(employee("J Doe", 1)).unwrap();
        let clash = Value::record([("Name", Value::str("J Doe")), ("Empno", Value::Int(2))]);
        assert!(matches!(s.refine(&clash), Err(CoreError::KeyViolation(_))));
    }

    #[test]
    fn key_must_be_defined() {
        let mut s = KeyedSet::new(KeyConstraint::new(["Name"]));
        let anonymous = Value::record([("Empno", Value::Int(9))]);
        assert!(matches!(
            s.insert(anonymous),
            Err(CoreError::KeyViolation(_))
        ));
    }

    #[test]
    fn incomparable_objects_with_distinct_keys_coexist() {
        let mut s = KeyedSet::new(KeyConstraint::new(["Name"]));
        s.insert(employee("J Doe", 1)).unwrap();
        s.insert(employee("K Smith", 2)).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.no_comparable_members());
    }

    #[test]
    fn compound_and_nested_keys() {
        let mut s = KeyedSet::new(KeyConstraint::new(["Name", "Addr.City"]));
        let a = Value::record([
            ("Name", Value::str("x")),
            ("Addr", Value::record([("City", Value::str("Austin"))])),
        ]);
        let b = Value::record([
            ("Name", Value::str("x")),
            ("Addr", Value::record([("City", Value::str("Moose"))])),
        ]);
        s.insert(a).unwrap();
        s.insert(b).unwrap(); // same Name, different City: allowed
        assert_eq!(s.len(), 2);
        let c = Value::record([
            ("Name", Value::str("x")),
            (
                "Addr",
                Value::record([("City", Value::str("Austin")), ("Zip", Value::Int(1))]),
            ),
        ]);
        assert!(s.insert(c).is_err(), "same compound key rejected");
    }

    #[test]
    fn find_by_key() {
        let mut s = KeyedSet::new(KeyConstraint::new(["Name"]));
        s.insert(employee("J Doe", 1)).unwrap();
        assert!(s.find(&[Value::str("J Doe")]).is_some());
        assert!(s.find(&[Value::str("Nobody")]).is_none());
    }
}
