//! Failure injection on the intrinsic store: random truncations and bit
//! flips anywhere in the log must never produce a state that was not a
//! committed prefix — recovery either restores a committed transaction
//! boundary or (for corruption *before* the last valid commit marker)
//! conservatively rolls further back. It must never panic, and never
//! resurrect uncommitted data.

use dbpl::persist::IntrinsicStore;
use dbpl::types::Type;
use dbpl::values::Value;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn fresh_log() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dbpl-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("case-{}.log", CASE.fetch_add(1, Ordering::Relaxed)))
}

/// Build a log with `commits` transactions, each setting handle "n" to its
/// transaction number.
fn build(path: &PathBuf, commits: u64) {
    let _ = std::fs::remove_file(path);
    let mut s = IntrinsicStore::open(path).unwrap();
    let o = s.alloc(Type::Int, Value::Int(0));
    s.set_handle("n", Type::Int, Value::Ref(o));
    for i in 1..=commits {
        s.update(o, Value::Int(i as i64)).unwrap();
        s.commit().unwrap();
    }
}

/// What value does handle "n" hold after recovery (None if absent)?
fn recovered_value(path: &PathBuf) -> Option<i64> {
    let s = IntrinsicStore::open(path).ok()?;
    let (_, v) = s.handle("n")?.clone();
    let o = v.as_ref_oid()?;
    s.get(o).ok()?.value.as_int()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncation_recovers_a_committed_prefix(commits in 1u64..8, chop in 1u64..200) {
        let path = fresh_log();
        build(&path, commits);
        let full = std::fs::metadata(&path).unwrap().len();
        let keep = full.saturating_sub(chop);
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(keep).unwrap();
        drop(f);

        // Whatever survives must be a value some commit actually wrote;
        // chopping everything may lose the handle entirely — also a valid
        // committed prefix (the empty one).
        if let Some(v) = recovered_value(&path) {
            prop_assert!((0..=commits as i64).contains(&v), "impossible value {v}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flips_never_panic_or_fabricate(commits in 1u64..6, byte in 0usize..4096, bit in 0u8..8) {
        let path = fresh_log();
        build(&path, commits);
        let mut bytes = std::fs::read(&path).unwrap();
        if !bytes.is_empty() {
            let idx = byte % bytes.len();
            bytes[idx] ^= 1 << bit;
            std::fs::write(&path, &bytes).unwrap();
        }
        // Recovery must not panic; a recovered value must be one a commit
        // wrote. (A flip inside a *payload* that still passes CRC is
        // cryptographically negligible for CRC32 on single-bit flips —
        // single-bit errors are always detected.)
        if let Some(v) = recovered_value(&path) {
            prop_assert!((0..=commits as i64).contains(&v), "fabricated value {v}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn post_recovery_store_is_writable(commits in 1u64..5, chop in 1u64..100) {
        // After any torn-tail recovery, the store must accept new commits
        // and subsequently reopen to exactly the new state.
        let path = fresh_log();
        build(&path, commits);
        let full = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full.saturating_sub(chop)).unwrap();
        drop(f);

        {
            let mut s = IntrinsicStore::open(&path).unwrap();
            let o = s.alloc(Type::Int, Value::Int(777));
            s.set_handle("fresh", Type::Int, Value::Ref(o));
            s.commit().unwrap();
        }
        let s = IntrinsicStore::open(&path).unwrap();
        let (_, v) = s.handle("fresh").expect("new commit survived");
        prop_assert_eq!(s.get(v.as_ref_oid().unwrap()).unwrap().value.as_int(), Some(777));
        let _ = std::fs::remove_file(&path);
    }
}
