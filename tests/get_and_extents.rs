//! The generic `Get` and the extent machinery, cross-crate (experiment
//! E1's correctness half): all strategies return the same objects; the
//! class/extent hierarchy is derived from the type hierarchy; extents
//! stay separable from types.

use dbpl::core::{Database, GetStrategy};
use dbpl::types::{parse_type, Type};
use dbpl::values::Value;

fn university_db() -> Database {
    let mut db = Database::new();
    db.declare_type("Person", parse_type("{Name: Str}").unwrap())
        .unwrap();
    db.declare_type("Employee", parse_type("{Name: Str, Empno: Int}").unwrap())
        .unwrap();
    db.declare_type("Student", parse_type("{Name: Str, Gpa: Float}").unwrap())
        .unwrap();
    db.declare_type(
        "WorkingStudent",
        parse_type("{Name: Str, Empno: Int, Gpa: Float}").unwrap(),
    )
    .unwrap();
    for i in 0..20 {
        let name = Value::str(format!("p{i}"));
        match i % 4 {
            0 => db
                .put(Type::named("Person"), Value::record([("Name", name)]))
                .unwrap(),
            1 => db
                .put(
                    Type::named("Employee"),
                    Value::record([("Name", name), ("Empno", Value::Int(i))]),
                )
                .unwrap(),
            2 => db
                .put(
                    Type::named("Student"),
                    Value::record([("Name", name), ("Gpa", Value::float(3.0))]),
                )
                .unwrap(),
            _ => db
                .put(
                    Type::named("WorkingStudent"),
                    Value::record([
                        ("Name", name),
                        ("Empno", Value::Int(i)),
                        ("Gpa", Value::float(3.5)),
                    ]),
                )
                .unwrap(),
        };
    }
    db.put(Type::Int, Value::Int(99)).unwrap();
    db
}

#[test]
fn class_extents_derive_from_type_hierarchy() {
    let db = university_db();
    // 20 people total; 10 employees (Employee + WorkingStudent);
    // 10 students; 5 working students.
    assert_eq!(db.get(&Type::named("Person")).len(), 20);
    assert_eq!(db.get(&Type::named("Employee")).len(), 10);
    assert_eq!(db.get(&Type::named("Student")).len(), 10);
    assert_eq!(db.get(&Type::named("WorkingStudent")).len(), 5);
    assert_eq!(db.get(&Type::Top).len(), 21);
}

#[test]
fn strategies_agree_everywhere() {
    let db = university_db();
    for bound in ["Person", "Employee", "Student", "WorkingStudent"] {
        let b = Type::named(bound);
        assert_eq!(
            db.get_with(&b, GetStrategy::Scan),
            db.get_with(&b, GetStrategy::TypedLists),
            "at {bound}"
        );
    }
}

#[test]
fn existential_packages_enforce_their_bound() {
    let db = university_db();
    let env = db.env().clone();
    let students = db.get(&Type::named("Student"));
    for pkg in &students {
        // Usable at the bound and its supertypes:
        assert!(pkg.open_at(&Type::named("Student"), &env).is_ok());
        assert!(pkg.open_at(&Type::named("Person"), &env).is_ok());
        // Not at siblings, even when the witness would structurally allow
        // it — static discipline is the bound, nothing more.
        assert!(pkg.open_at(&Type::named("Employee"), &env).is_err());
        // Inspecting the witness (Amber's typeOf) is fine:
        let w = pkg.witness().to_string();
        assert!(w == "Student" || w == "WorkingStudent");
    }
}

#[test]
fn hierarchy_edges_match_get_inclusions() {
    let db = university_db();
    let h = db.class_hierarchy();
    // For every edge child -> parent in the derived hierarchy, the
    // child's extent is included in the parent's.
    for child in h.names() {
        for parent in h.parents(child) {
            let c = db.get(&Type::named(child.clone()));
            let p = db.get(&Type::named(parent.clone()));
            for pkg in &c {
                assert!(
                    p.iter().any(|q| q.open() == pkg.open()),
                    "object of {child} missing from {parent}"
                );
            }
        }
    }
    assert_eq!(
        h.parents("WorkingStudent").collect::<Vec<_>>().len(),
        2,
        "WorkingStudent covers Employee and Student"
    );
}

#[test]
fn multiple_and_transient_extents_coexist() {
    let mut db = university_db();
    db.extents_mut()
        .create("emp_main", Type::named("Employee"), false)
        .unwrap();
    db.extents_mut()
        .create("emp_hypothetical", Type::named("Employee"), true)
        .unwrap();
    let env = db.env().clone();
    let e = db
        .alloc(
            Type::named("Employee"),
            Value::record([("Name", Value::str("x")), ("Empno", Value::Int(1))]),
        )
        .unwrap();
    let heap = db.heap().clone();
    db.extents_mut().insert("emp_main", e, &heap, &env).unwrap();
    // Same object, second extent, same type — no class construct would
    // allow this.
    db.extents_mut()
        .insert("emp_hypothetical", e, &heap, &env)
        .unwrap();
    assert_eq!(db.extents().extent("emp_main").unwrap().len(), 1);
    assert_eq!(db.extents().extent("emp_hypothetical").unwrap().len(), 1);
    // Dropping the transient one at persistence time:
    db.extents_mut().drop_transient();
    assert!(db.extents().extent("emp_hypothetical").is_err());
    assert!(db.extents().extent("emp_main").is_ok());
}

#[test]
fn database_image_roundtrip_preserves_get() {
    let db = university_db();
    let img = db.capture_image();
    let restored = Database::from_image(&img).unwrap();
    for bound in ["Person", "Employee", "Student", "WorkingStudent"] {
        assert_eq!(
            restored.get(&Type::named(bound)).len(),
            db.get(&Type::named(bound)).len(),
            "at {bound}"
        );
    }
}
