//! End-to-end MiniDBPL programs: the paper's sketches and larger
//! compositions run through parse → check → eval against shared session
//! state.

use dbpl::lang::{Phase, Session};

fn run(src: &str) -> Vec<String> {
    Session::new()
        .unwrap()
        .run(src)
        .unwrap_or_else(|e| panic!("{}", e.render(src)))
}

#[test]
fn paper_person_employee_database() {
    // The Amber-style person/employee database from the paper, end to end.
    let out = run("
        type Person = {Name: Str, Address: {City: Str}}
        type Employee = {Name: Str, Address: {City: Str}, Empno: Int, Dept: Str}

        put(db, dynamic {Name = 'J Doe', Address = {City = 'Austin'}})
        put(db, dynamic {Name = 'M Dee', Address = {City = 'Moose'},
                         Empno = 1, Dept = 'Manuf'})
        put(db, dynamic {Name = 'N Bug', Address = {City = 'Billings'},
                         Empno = 2, Dept = 'Admin'})

        -- getPersons returns a larger list than getEmployees
        print(len[Person](get[Person](db)))
        print(len[Employee](get[Employee](db)))
        -- and projecting employees appears in the persons result
        print(map[Employee][Str](fn(e: Employee) => e.Dept, get[Employee](db)))
    ");
    assert_eq!(out, vec!["3", "2", "['Manuf', 'Admin']"]);
}

#[test]
fn turning_a_person_into_an_employee() {
    // Object-level inheritance via `with`, checked against the subtype
    // hierarchy via an annotation.
    let out = run("
        type Person = {Name: Str}
        type Employee = {Name: Str, Empno: Int}
        let o = {Name = 'J Doe'}
        let o2: Employee = o with {Empno = 1234}
        let back: Person = o2
        print(back.Name)
        print(o2.Empno)
    ");
    assert_eq!(out, vec!["'J Doe'", "1234"]);
}

#[test]
fn total_cost_in_minidbpl() {
    // The bill-of-materials recursion, written in the language (over a
    // list-shaped explosion; the DAG-memoized version is the library's).
    let out = run("
        type Component = {Qty: Int, Price: Int}
        fun totalCost(cs: List[Component]): Int =
          if isEmpty[Component](cs) then 0
          else head[Component](cs).Qty * head[Component](cs).Price
               + totalCost(tail[Component](cs))
        print(totalCost([{Qty = 4, Price = 2}, {Qty = 2, Price = 13}]))
    ");
    assert_eq!(out, vec!["34"]);
}

#[test]
fn persistence_across_three_programs() {
    let mut s = Session::new().unwrap();
    // Program 1 creates and externs.
    s.run(
        "
        type Parts = {Items: List[{Name: Str, Price: Int}]}
        let d = {Items = [{Name = 'bolt', Price = 2}]}
        extern('PartsFile', dynamic d)
    ",
    )
    .unwrap();
    // Program 2 interns, modifies, and re-externs.
    s.run(
        "
        type Parts = {Items: List[{Name: Str, Price: Int}]}
        let x = coerce intern('PartsFile') to Parts
        let x2 = x with {Items = cons[{Name: Str, Price: Int}]({Name = 'nut', Price = 1}, x.Items)}
        extern('PartsFile', dynamic x2)
    ",
    )
    .unwrap();
    // Program 3 observes the committed state.
    let out = s
        .run(
            "
        type Parts = {Items: List[{Name: Str, Price: Int}]}
        print(len[{Name: Str, Price: Int}]((coerce intern('PartsFile') to Parts).Items))
    ",
        )
        .unwrap();
    assert_eq!(out, vec!["2"]);
}

#[test]
fn session_type_declarations_accumulate_but_duplicate_conflicts_fail() {
    let mut s = Session::new().unwrap();
    s.run("type T = {A: Int}").unwrap();
    let err = s.run("type T = {B: Str}").unwrap_err();
    assert_eq!(err.phase, Phase::Check, "redeclaration rejected: {err}");
}

#[test]
fn static_errors_prevent_all_effects() {
    let mut s = Session::new().unwrap();
    let before = s.db.len();
    // A later line has a type error; earlier puts must not run.
    let err = s
        .run("put(db, dynamic {N = 1})\nlet x: Int = 'oops'")
        .unwrap_err();
    assert_eq!(err.phase, Phase::Check);
    assert_eq!(s.db.len(), before, "checked-then-run discipline");
}

#[test]
fn coerce_through_subtyping_works_like_the_paper_says() {
    // A dynamic Employee coerces to Person but not to Student.
    let out = run("
        type Person = {Name: Str}
        type Student = {Name: Str, Gpa: Float}
        let d = dynamic {Name = 'e', Empno = 1}
        print((coerce d to Person).Name)
    ");
    assert_eq!(out, vec!["'e'"]);
    let mut s = Session::new().unwrap();
    let err = s
        .run(
            "
        type Student = {Name: Str, Gpa: Float}
        let d = dynamic {Name = 'e', Empno = 1}
        coerce d to Student
    ",
        )
        .unwrap_err();
    assert_eq!(
        err.phase,
        Phase::Eval,
        "the paper's run-time exception: {err}"
    );
}

#[test]
fn adaplex_style_include_works_in_the_language() {
    let out = run("
        type Person = {Name: Str}
        type Employee = {Name: Str, Empno: Int}
        include Employee in Person
        let e: Employee = {Name = 'x', Empno = 1}
        let p: Person = e
        print(p.Name)
    ");
    assert_eq!(out, vec!["'x'"]);
}

#[test]
fn higher_order_database_queries() {
    let out = run("
        type Emp = {Name: Str, Sal: Int}
        put(db, dynamic {Name = 'ann', Sal = 10})
        put(db, dynamic {Name = 'bob', Sal = 20})
        put(db, dynamic {Name = 'cyd', Sal = 30})
        fun wellPaid(threshold: Int): List[Emp] =
          filter[Emp](fn(e: Emp) => e.Sal > threshold, get[Emp](db))
        print(map[Emp][Str](fn(e: Emp) => e.Name, wellPaid(15)))
        print(sum(map[Emp][Int](fn(e: Emp) => e.Sal, wellPaid(0))))
    ");
    assert_eq!(out, vec!["['bob', 'cyd']", "60.0"]);
}

#[test]
fn memoization_via_transient_records() {
    // The paper's memoizing trick at language level: compute once, carry
    // the result in an extended record, reuse without recomputation.
    let out = run("
        type Part = {Name: Str, Cost: Int}
        fun expensive(p: Part): Int = p.Cost * 1000
        let p = {Name = 'widget', Cost = 3}
        -- attach the transient field
        let cached = p with {TotalCost = expensive(p)}
        print(cached.TotalCost + cached.TotalCost)
    ");
    assert_eq!(out, vec!["6000"]);
}

#[test]
fn shipped_university_script_runs() {
    let src = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/scripts/university.dbpl"),
    )
    .expect("script shipped with the repository");
    let out = run(&src);
    assert_eq!(
        out,
        vec![
            "4",
            "2",
            "2",
            "1",
            "['ann', 'cyd']",
            "210.0",
            "75",
            "-50",
            "2"
        ]
    );
}

#[test]
fn shipped_parts_explosion_script_runs() {
    let src = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("examples/scripts/parts_explosion.dbpl"),
    )
    .expect("script shipped with the repository");
    let out = run(&src);
    assert_eq!(out, vec!["2", "13", "40", "40"]);
}
