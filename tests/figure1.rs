//! Integration test for **Figure 1**: the join of generalized relations,
//! reproduced exactly as published, plus the surrounding algebraic facts
//! the paper states about it.

use dbpl::relation::{figure1_expected, figure1_r1, figure1_r2, GenRelation, Reduction};
use dbpl::values::{is_antichain, leq, Value};

#[test]
fn figure1_exact_reproduction() {
    let joined = figure1_r1().natural_join(&figure1_r2());
    let expected = figure1_expected();
    assert_eq!(joined.len(), expected.len(), "row count");
    for row in expected.rows() {
        assert!(joined.contains(row), "missing row {row}");
    }
    for row in joined.rows() {
        assert!(expected.contains(row), "unexpected row {row}");
    }
}

#[test]
fn figure1_rows_refine_their_sources() {
    // Every output object is a join of one object from each input:
    // it must dominate some object of R1 and some object of R2.
    let joined = figure1_r1().natural_join(&figure1_r2());
    for out in joined.rows() {
        assert!(
            figure1_r1().rows().iter().any(|r| leq(r, out)),
            "{out} does not refine any R1 row"
        );
        assert!(
            figure1_r2().rows().iter().any(|r| leq(r, out)),
            "{out} does not refine any R2 row"
        );
    }
}

#[test]
fn figure1_join_is_least_upper_bound_under_minimal_reduction() {
    let r1 = figure1_r1();
    let r2 = figure1_r2();
    let jmin = r1.natural_join_with(&r2, Reduction::Minimal);
    // Upper bound:
    assert!(r1.leq(&jmin) && r2.leq(&jmin));
    // Least: below any other upper bound we can easily construct — e.g.
    // the maximal-reduced join.
    let jmax = r1.natural_join_with(&r2, Reduction::Maximal);
    assert!(jmin.leq(&jmax));
}

#[test]
fn figure1_is_stable_under_reordering() {
    // Join is commutative (up to equivalence) on the published data.
    let ab = figure1_r1().natural_join(&figure1_r2());
    let ba = figure1_r2().natural_join(&figure1_r1());
    assert!(ab.equiv(&ba));
    assert_eq!(ab.len(), ba.len());
}

#[test]
fn figure1_antichain_invariants() {
    for rel in [figure1_r1(), figure1_r2(), figure1_expected()] {
        assert!(is_antichain(rel.rows()));
    }
}

#[test]
fn figure1_projection_recovers_r2ish_information() {
    // Projecting the join onto Dept and Addr gives a relation every
    // object of which refines an R2 object.
    let joined = figure1_r1().natural_join(&figure1_r2());
    let proj = joined.project([
        dbpl::values::Path::parse("Dept"),
        dbpl::values::Path::parse("Addr.City"),
        dbpl::values::Path::parse("Addr.State"),
    ]);
    for p in proj.rows() {
        assert!(
            figure1_r2().rows().iter().any(|r| leq(r, p) || leq(p, r)),
            "{p} unrelated to every R2 row"
        );
    }
}

#[test]
fn keys_would_exclude_the_double_n_bug() {
    // The figure's two N Bug rows coexist because no key is imposed.
    // Under a Name key, the second is rejected — exactly the paper's
    // point about keys preventing comparable (and here key-equal)
    // coexistence.
    use dbpl::core::{KeyConstraint, KeyedSet};
    let joined = figure1_r1().natural_join(&figure1_r2());
    let mut keyed = KeyedSet::new(KeyConstraint::new(["Name"]));
    let mut rejected = 0;
    for row in joined.rows() {
        if keyed.insert(row.clone()).is_err() {
            rejected += 1;
        }
    }
    assert_eq!(rejected, 1, "one of the two N Bug completions is rejected");
    assert_eq!(keyed.len(), 3);
}

#[test]
fn empty_and_identity_cases() {
    let r1 = figure1_r1();
    let empty = GenRelation::new();
    // Joining with the empty relation yields the empty relation (no
    // pairs).
    assert!(r1.natural_join(&empty).is_empty());
    // Joining with the single empty record (the unit of ⊔) preserves R1.
    let unit = GenRelation::from_values([Value::record::<[(&str, Value); 0], &str>([])]);
    let j = r1.natural_join(&unit);
    assert!(j.equiv(&r1));
}
