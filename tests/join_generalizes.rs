//! Experiment E4's correctness half: the generalized natural join
//! restricted to flat, total records **is** the classical natural join —
//! "it is a generalization of the 'natural join' for 1NF relations".

use dbpl::relation::{to_flat, to_generalized, Relation, Schema};
use dbpl::types::Type;
use dbpl::values::Value;
use proptest::prelude::*;

fn schema(names: &[&str]) -> Schema {
    Schema::new(names.iter().map(|n| (n.to_string(), Type::Int))).unwrap()
}

fn relation(names: &[&str], rows: &[Vec<i64>]) -> Relation {
    let mut r = Relation::new(schema(names));
    for row in rows {
        r.insert(
            names
                .iter()
                .zip(row)
                .map(|(n, v)| (n.to_string(), Value::Int(*v)))
                .collect(),
        )
        .unwrap();
    }
    r
}

#[test]
fn textbook_example_agrees() {
    // R(K, X) ⋈ S(K, Y)
    let r = relation(&["K", "X"], &[vec![1, 10], vec![2, 20], vec![3, 30]]);
    let s = relation(&["K", "Y"], &[vec![1, 100], vec![1, 101], vec![3, 300]]);
    let flat = r.natural_join(&s).unwrap();
    assert_eq!(flat.len(), 3); // K=1 twice, K=3 once

    let gen = to_generalized(&r).natural_join(&to_generalized(&s));
    let back = to_flat(&gen, flat.schema().clone()).unwrap();
    assert_eq!(back, flat);
}

#[test]
fn disjoint_schemas_become_products() {
    let r = relation(&["A"], &[vec![1], vec![2]]);
    let s = relation(&["B"], &[vec![7], vec![8], vec![9]]);
    let flat = r.natural_join(&s).unwrap();
    assert_eq!(flat.len(), 6);
    let gen = to_generalized(&r).natural_join(&to_generalized(&s));
    assert_eq!(gen.len(), 6);
}

#[test]
fn identical_schemas_become_intersections() {
    let r = relation(&["A", "B"], &[vec![1, 1], vec![2, 2]]);
    let s = relation(&["A", "B"], &[vec![2, 2], vec![3, 3]]);
    let flat = r.natural_join(&s).unwrap();
    assert_eq!(flat.len(), 1);
    let gen = to_generalized(&r).natural_join(&to_generalized(&s));
    let back = to_flat(&gen, flat.schema().clone()).unwrap();
    assert_eq!(back, flat);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The headline property, on random relations with overlapping
    /// schemas and small domains (to force matches).
    #[test]
    fn generalized_join_specializes_exactly(
        r_rows in prop::collection::vec(prop::collection::vec(0i64..4, 3), 0..12),
        s_rows in prop::collection::vec(prop::collection::vec(0i64..4, 3), 0..12),
    ) {
        let r = relation(&["K", "L", "X"], &r_rows);
        let s = relation(&["K", "L", "Y"], &s_rows);
        let flat = r.natural_join(&s).unwrap();
        let gen = to_generalized(&r).natural_join(&to_generalized(&s));
        prop_assert_eq!(gen.len(), flat.len());
        let back = to_flat(&gen, flat.schema().clone()).unwrap();
        prop_assert_eq!(back, flat);
    }

    /// Projection also specializes: flat π vs generalized projection.
    #[test]
    fn generalized_projection_specializes(
        rows in prop::collection::vec(prop::collection::vec(0i64..4, 3), 0..12),
    ) {
        let r = relation(&["A", "B", "C"], &rows);
        let flat = r.project(&["A", "B"]).unwrap();
        let gen = to_generalized(&r)
            .project([dbpl::values::Path::parse("A"), dbpl::values::Path::parse("B")]);
        let back = to_flat(&gen, flat.schema().clone()).unwrap();
        prop_assert_eq!(back, flat);
    }
}
