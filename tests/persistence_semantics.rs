//! Cross-model persistence semantics (experiment E3's correctness half):
//! the replicating model's update anomaly and storage duplication; the
//! intrinsic model's sharing, crash recovery and schema evolution; the
//! all-or-nothing model's totality. Principle 2 — types persist with
//! values — is checked at every boundary.

use dbpl::persist::{
    open_handle, Image, IntrinsicStore, OpenOutcome, PersistError, ReplicatingStore,
};
use dbpl::types::{parse_type, Type, TypeEnv};
use dbpl::values::{DynValue, Heap, Value};
use std::collections::BTreeMap;
use std::path::PathBuf;

fn dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dbpl-itest-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn replicating_update_anomaly_and_waste() {
    let store = ReplicatingStore::open(dir("anomaly")).unwrap();
    let mut heap = Heap::new();
    let shared = heap.alloc(Type::Str, Value::Str("x".repeat(4096)));
    let a = DynValue::new(Type::Top, Value::record([("c", Value::Ref(shared))]));
    let b = DynValue::new(Type::Top, Value::record([("c", Value::Ref(shared))]));
    store.extern_value("A", &a, &heap).unwrap();
    store.extern_value("B", &b, &heap).unwrap();

    // Wasted storage: the 4 KiB payload is written twice.
    let total = store.stored_bytes("A").unwrap() + store.stored_bytes("B").unwrap();
    assert!(total >= 2 * 4096, "payload duplicated: {total}");

    // Update anomaly: interned copies diverge.
    let mut h2 = Heap::new();
    let ia = store.intern("A", &mut h2).unwrap();
    let ib = store.intern("B", &mut h2).unwrap();
    let ca = ia.value.field("c").unwrap().as_ref_oid().unwrap();
    let cb = ib.value.field("c").unwrap().as_ref_oid().unwrap();
    assert_ne!(ca, cb);
    h2.update(ca, Value::Str("CHANGED".into())).unwrap();
    assert_eq!(h2.get(cb).unwrap().value.as_str().unwrap().len(), 4096);
}

#[test]
fn intrinsic_store_shares_and_survives() {
    let log = dir("intrinsic").join("db.log");
    {
        let mut s = IntrinsicStore::open(&log).unwrap();
        let shared = s.alloc(Type::Int, Value::Int(1));
        s.set_handle("a", Type::Top, Value::record([("c", Value::Ref(shared))]));
        s.set_handle("b", Type::Top, Value::record([("c", Value::Ref(shared))]));
        s.commit().unwrap();
        s.update(shared, Value::Int(2)).unwrap();
        s.commit().unwrap();
    }
    let s = IntrinsicStore::open(&log).unwrap();
    for h in ["a", "b"] {
        let (_, v) = s.handle(h).unwrap();
        let o = v.field("c").unwrap().as_ref_oid().unwrap();
        assert_eq!(
            s.get(o).unwrap().value,
            Value::Int(2),
            "no anomaly through {h}"
        );
    }
}

#[test]
fn type_persists_with_the_value_everywhere() {
    // Principle 2 at every boundary: replicating handles, intrinsic
    // handles, and image bindings all come back with their types.
    let env = TypeEnv::new();
    let person_ty = parse_type("{Name: Str}").unwrap();
    let person = Value::record([("Name", Value::str("d"))]);

    // Replicating.
    let store = ReplicatingStore::open(dir("principle2")).unwrap();
    store
        .extern_value(
            "P",
            &DynValue::new(person_ty.clone(), person.clone()),
            &Heap::new(),
        )
        .unwrap();
    let mut h = Heap::new();
    let back = store.intern("P", &mut h).unwrap();
    assert_eq!(back.ty, person_ty);

    // ...and the coercion guard it enables.
    assert!(dbpl::values::coerce(&back, &parse_type("{Name: Int}").unwrap(), &env).is_err());
    assert!(dbpl::values::coerce(&back, &person_ty, &env).is_ok());

    // Intrinsic.
    let log = dir("principle2i").join("db.log");
    {
        let mut s = IntrinsicStore::open(&log).unwrap();
        s.set_handle("P", person_ty.clone(), person.clone());
        s.commit().unwrap();
    }
    let s = IntrinsicStore::open(&log).unwrap();
    assert_eq!(s.handle("P").unwrap().0, person_ty);

    // Image.
    let img = Image::capture(
        &env,
        &Heap::new(),
        &BTreeMap::from([("P".to_string(), DynValue::new(person_ty.clone(), person))]),
    );
    let (_, _, bindings) = Image::decode(&img.encode()).unwrap().restore().unwrap();
    assert_eq!(bindings["P"].ty, person_ty);
}

#[test]
fn schema_evolution_full_cycle() {
    let log = dir("evolution").join("db.log");
    let env = TypeEnv::new();
    let mut s = IntrinsicStore::open(&log).unwrap();
    s.set_handle(
        "DB",
        parse_type("{Name: Str}").unwrap(),
        Value::record([("Name", Value::str("d"))]),
    );
    s.commit().unwrap();

    // Enrich twice, in different directions; the schema accumulates.
    for (expected, field) in [
        ("{Name: Str, Empno: Int}", "Empno"),
        ("{Name: Str, Dept: Str}", "Dept"),
    ] {
        match open_handle(&mut s, &env, "DB", &parse_type(expected).unwrap()).unwrap() {
            OpenOutcome::Enriched { new, .. } => {
                assert!(new.to_string().contains(field));
            }
            other => panic!("expected enrichment, got {other:?}"),
        }
        s.commit().unwrap();
    }
    // Final schema has all three fields; it persists across reopen.
    drop(s);
    let mut s = IntrinsicStore::open(&log).unwrap();
    assert_eq!(
        s.handle("DB").unwrap().0,
        parse_type("{Dept: Str, Empno: Int, Name: Str}").unwrap()
    );
    // "Provided we never contradict any of our previous definitions":
    let clash = parse_type("{Empno: Str}").unwrap();
    assert!(matches!(
        open_handle(&mut s, &env, "DB", &clash),
        Err(PersistError::SchemaMismatch { .. })
    ));
}

#[test]
fn compaction_preserves_state_and_shrinks() {
    let log = dir("compaction").join("db.log");
    let mut s = IntrinsicStore::open(&log).unwrap();
    let o = s.alloc(Type::Int, Value::Int(0));
    s.set_handle("n", Type::Int, Value::Ref(o));
    for i in 1..=200 {
        s.update(o, Value::Int(i)).unwrap();
        s.commit().unwrap();
    }
    let before = s.stored_bytes().unwrap();
    s.compact().unwrap();
    let after = s.stored_bytes().unwrap();
    assert!(after < before / 20, "{before} -> {after}");
    drop(s);
    let s = IntrinsicStore::open(&log).unwrap();
    assert_eq!(s.get(o).unwrap().value, Value::Int(200));
}

#[test]
fn all_or_nothing_is_atomic_under_partial_write() {
    // A truncated image never half-loads.
    let d = dir("atomic");
    let path = d.join("img");
    let img = Image::capture(&TypeEnv::new(), &Heap::new(), &BTreeMap::new());
    img.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    for cut in 0..bytes.len() {
        assert!(
            Image::decode(&bytes[..cut]).is_err(),
            "prefix {cut} decoded"
        );
    }
}

#[test]
fn namespaces_control_sharing() {
    use dbpl::persist::{NamespaceManager, Visibility};
    let mut m = NamespaceManager::open(dir("ns")).unwrap();
    m.create("research").unwrap();
    m.create("teaching").unwrap();
    let heap = Heap::new();
    m.space("research")
        .unwrap()
        .extern_value("Dataset", &DynValue::new(Type::Int, Value::Int(9)), &heap)
        .unwrap();
    // Without an export, no cross-namespace sharing.
    assert!(m.import("research", "Dataset", "teaching").is_err());
    m.export("research", "Dataset", Visibility::Public).unwrap();
    m.import("research", "Dataset", "teaching").unwrap();
    let mut h = Heap::new();
    assert_eq!(
        m.space("teaching")
            .unwrap()
            .intern("Dataset", &mut h)
            .unwrap()
            .value,
        Value::Int(9)
    );
}

#[test]
fn database_persists_through_the_intrinsic_store() {
    use dbpl::core::Database;
    let log = dir("db-bridge").join("db.log");
    {
        let mut db = Database::new();
        db.declare_type("Person", parse_type("{Name: Str}").unwrap())
            .unwrap();
        db.put(
            parse_type("Person").unwrap(),
            Value::record([("Name", Value::str("d"))]),
        )
        .unwrap();
        let mut store = IntrinsicStore::open(&log).unwrap();
        db.save_to_intrinsic(&mut store).unwrap();
        store.commit().unwrap();
    }
    let store = IntrinsicStore::open(&log).unwrap();
    let db = Database::load_from_intrinsic(&store).unwrap();
    assert_eq!(db.get(&parse_type("Person").unwrap()).len(), 1);
    assert!(db.env().lookup("Person").is_some());
}

#[test]
fn replicating_handles_are_safe_under_concurrency() {
    // The paper: "if any concurrency is to be implemented through the use
    // of replicating persistence, it must be done by ensuring that the
    // various extern and intern operations for a given handle are
    // properly synchronized". The store synchronizes per handle: under
    // concurrent extern/intern of distinct payloads, every intern must
    // see a *complete* unit (never an interleaving).
    use std::sync::Arc;
    let store = Arc::new(ReplicatingStore::open(dir("concurrent")).unwrap());
    let heap = Heap::new();
    store
        .extern_value("H", &DynValue::new(Type::Int, Value::Int(0)), &heap)
        .unwrap();

    let writers: Vec<_> = (1..=4)
        .map(|w| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                let heap = Heap::new();
                for i in 0..50 {
                    let payload = Value::list(vec![Value::Int(w * 1000 + i); 64]);
                    store
                        .extern_value("H", &DynValue::new(Type::list(Type::Int), payload), &heap)
                        .unwrap();
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for _ in 0..100 {
                    let mut h = Heap::new();
                    let d = store.intern("H", &mut h).unwrap();
                    // A complete unit: either the initial Int or a
                    // homogeneous 64-element list.
                    match &d.value {
                        Value::Int(0) => {}
                        Value::List(xs) => {
                            assert_eq!(xs.len(), 64);
                            assert!(xs.windows(2).all(|w| w[0] == w[1]), "torn write observed");
                        }
                        other => panic!("unexpected unit {other}"),
                    }
                }
            })
        })
        .collect();
    for t in writers.into_iter().chain(readers) {
        t.join().unwrap();
    }
}
