//! The capability matrix, pinned to behaviour: for each claim the survey
//! table makes about a language, exercise the corresponding model and
//! check the behaviour matches. If a model changes, this test — not just
//! the table — fails.

use dbpl::models::{
    capabilities, AdaplexSchema, AmberProgram, GalileoSchema, MetaClass, PascalRDatabase,
    TaxisSchema,
};
use dbpl::relation::Schema;
use dbpl::types::Type;
use dbpl::values::Value;

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("dbpl-survey-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn pascal_r_claims_hold() {
    let caps = capabilities("Pascal/R").unwrap();
    let mut db = PascalRDatabase::open(tmp("pr").join("db")).unwrap();
    // separates type/extent: two relations over the same record schema.
    db.declare_relation("A", Schema::new([("X", Type::Int)]).unwrap())
        .unwrap();
    db.declare_relation("B", Schema::new([("X", Type::Int)]).unwrap())
        .unwrap();
    assert!(caps.multiple_extents_per_type);
    // any_value_persists = false: storing a bare value fails.
    assert_eq!(
        caps.any_value_persists,
        db.store_value("V", Value::Int(1)).is_ok()
    );
}

#[test]
fn taxis_claims_hold() {
    let caps = capabilities("Taxis").unwrap();
    assert!(caps.has_class_construct && caps.declared_subtyping);
    let mut tx = TaxisSchema::new();
    tx.declare_class(
        "PERSON",
        MetaClass::VariableClass,
        &[],
        [("Name", Type::Str)],
    )
    .unwrap();
    tx.declare_class(
        "EMPLOYEE",
        MetaClass::VariableClass,
        &["PERSON"],
        [("Empno", Type::Int)],
    )
    .unwrap();
    // type = extent coupling: declaring the class *created* the extent;
    // there is no way to get a second extent for PERSON.
    assert!(!caps.separates_type_extent);
    assert!(tx.extent("PERSON").unwrap().is_empty());
    let e = tx
        .new_instance(
            "EMPLOYEE",
            Value::record([("Name", Value::str("d")), ("Empno", Value::Int(1))]),
        )
        .unwrap();
    assert!(
        tx.extent("PERSON").unwrap().contains(&e),
        "isa implies extent inclusion"
    );
}

#[test]
fn adaplex_claims_hold() {
    let caps = capabilities("Adaplex").unwrap();
    assert!(caps.declared_subtyping);
    let mut ad = AdaplexSchema::new();
    ad.entity_type("Person", [("Name", Type::Str)]).unwrap();
    ad.entity_type("Clone", [("Name", Type::Str)]).unwrap();
    // Structural identity is NOT subtyping under the declared policy.
    assert!(!ad.is_subtype("Clone", "Person"));
    // class_over_arbitrary_type = false: component restriction bites.
    let nested = ad.entity_type("Nested", [("Sub", Type::record([("x", Type::Int)]))]);
    assert_eq!(caps.class_over_arbitrary_type, nested.is_ok());
}

#[test]
fn galileo_claims_hold() {
    let caps = capabilities("Galileo").unwrap();
    let mut ga = GalileoSchema::new();
    // class over arbitrary type: a class of integers works.
    assert_eq!(
        caps.class_over_arbitrary_type,
        ga.define_class("ints", Type::Int).is_ok()
    );
    // multiple extents per type: a second class over Int must fail.
    assert_eq!(
        caps.multiple_extents_per_type,
        ga.define_class("ints2", Type::Int).is_ok()
    );
}

#[test]
fn amber_claims_hold() {
    let caps = capabilities("Amber").unwrap();
    assert!(caps.has_dynamic && !caps.has_class_construct);
    let mut am = AmberProgram::open(tmp("amber")).unwrap();
    am.env
        .declare("Person", Type::record([("Name", Type::Str)]))
        .unwrap();
    // any value persists: an Int externs fine.
    let d = am.dynamic(Type::Int, Value::Int(3)).unwrap();
    assert_eq!(caps.any_value_persists, am.extern_value("X", &d).is_ok());
    // multiple (derived) extents per type: extraction at any bound, any
    // number of times — nothing is registered anywhere.
    let p = am
        .dynamic(
            Type::named("Person"),
            Value::record([("Name", Value::str("p"))]),
        )
        .unwrap();
    am.add(p);
    assert_eq!(am.extract(&Type::named("Person")).len(), 1);
    assert_eq!(am.extract(&Type::Top).len(), 1);
}

#[test]
fn exactly_the_separating_languages_separate() {
    // The survey's core column, checked as a whole.
    let separating: Vec<&str> = dbpl::models::survey()
        .into_iter()
        .filter(|c| c.separates_type_extent)
        .map(|c| c.name)
        .collect();
    assert_eq!(separating, ["Pascal/R", "Galileo", "Amber"]);
}
