//! Offline stand-in for the subset of `criterion` 0.5 this workspace's
//! benches use. It runs each benchmark a small, configurable number of
//! times and prints the best observed time — enough to compare strategies
//! and regenerate the EXPERIMENTS.md tables without the real crate.
//!
//! Iterations per sample are controlled by `DBPL_BENCH_ITERS` (default 3);
//! passing `--test` (as `cargo test` does for bench targets) runs each
//! routine exactly once with no timing output.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measures one benchmark routine.
pub struct Bencher {
    iters: u64,
    best: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, keeping the best (minimum) sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.iters {
            let start = Instant::now();
            let out = routine();
            let elapsed = start.elapsed();
            std::hint::black_box(out);
            self.best = Some(self.best.map_or(elapsed, |b| b.min(elapsed)));
        }
    }
}

/// Throughput annotation (recorded, displayed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// Just a parameter (for single-function groups).
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

fn env_iters(test_mode: bool) -> u64 {
    if test_mode {
        return 1;
    }
    std::env::var("DBPL_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

fn run_one(
    label: &str,
    test_mode: bool,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        iters: env_iters(test_mode),
        best: None,
    };
    f(&mut b);
    if test_mode {
        return;
    }
    match b.best {
        Some(best) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) if best.as_secs_f64() > 0.0 => {
                    format!("  ({:.0} elem/s)", n as f64 / best.as_secs_f64())
                }
                Some(Throughput::Bytes(n)) if best.as_secs_f64() > 0.0 => {
                    format!("  ({:.0} B/s)", n as f64 / best.as_secs_f64())
                }
                _ => String::new(),
            };
            println!("bench {label:<48} {best:>12.3?}{rate}");
        }
        None => println!("bench {label:<48} (no samples)"),
    }
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.test_mode, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    throughput: Option<Throughput>,
    // Tie the group's lifetime to the Criterion that opened it, like the
    // real API (prevents two live groups from interleaving output).
    #[allow(dead_code)]
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; sampling here is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.test_mode, self.throughput, &mut f);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.test_mode, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Re-export of `std::hint::black_box` for parity with criterion.
pub use std::hint::black_box;

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
