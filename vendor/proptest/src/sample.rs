//! `prop::sample::select`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::sync::Arc;

/// Uniformly select one element of `options`.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select on an empty list");
    Select {
        options: Arc::new(options),
    }
}

/// The strategy returned by [`select`].
pub struct Select<T> {
    options: Arc<Vec<T>>,
}

impl<T> Clone for Select<T> {
    fn clone(&self) -> Self {
        Select {
            options: Arc::clone(&self.options),
        }
    }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len())].clone()
    }
}
