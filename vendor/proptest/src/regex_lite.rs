//! A tiny generator for the regex subset the test suite uses as string
//! strategies: concatenations of atoms, where an atom is a character
//! class `[a-z_0…]`, a literal character, or `.` (any printable ASCII),
//! optionally followed by `{n}`, `{m,n}`, `*`, `+`, or `?`.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// Explicit set of candidate characters.
    Class(Vec<char>),
    /// Any printable ASCII character.
    Any,
}

fn printable() -> Vec<char> {
    (0x20u8..0x7F).map(|b| b as char).collect()
}

fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range {lo}-{hi} in {pattern}");
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in {pattern}");
                i += 1; // consume ']'
                Atom::Class(set)
            }
            '.' => {
                i += 1;
                Atom::Any
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "trailing backslash in {pattern}");
                let c = chars[i];
                i += 1;
                Atom::Class(vec![c])
            }
            c => {
                i += 1;
                Atom::Class(vec![c])
            }
        };
        // Optional repetition suffix.
        let (lo, hi) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| p + i)
                        .unwrap_or_else(|| panic!("unterminated repetition in {pattern}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse().expect("repetition lower bound"),
                            b.trim().parse().expect("repetition upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("repetition count");
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 4)
                }
                '+' => {
                    i += 1;
                    (1, 4)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, lo, hi));
    }
    atoms
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for (atom, lo, hi) in parse(pattern) {
        let n = rng.range(lo, hi);
        for _ in 0..n {
            let c = match &atom {
                Atom::Class(set) => {
                    assert!(!set.is_empty(), "empty class in {pattern}");
                    set[rng.below(set.len())]
                }
                Atom::Any => {
                    let p = printable();
                    p[rng.below(p.len())]
                }
            };
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_many(pattern: &str) -> Vec<String> {
        let mut rng = TestRng::from_seed(9);
        (0..200).map(|_| generate(pattern, &mut rng)).collect()
    }

    #[test]
    fn classes_and_reps() {
        for s in gen_many("[a-d]") {
            assert_eq!(s.len(), 1);
            assert!(('a'..='d').contains(&s.chars().next().unwrap()), "{s}");
        }
        for s in gen_many("[A-Z][a-z]{0,4}") {
            assert!(!s.is_empty() && s.len() <= 5, "{s}");
            assert!(s.chars().next().unwrap().is_ascii_uppercase());
        }
        for s in gen_many("[ab]{1,2}") {
            assert!((1..=2).contains(&s.len()), "{s}");
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }

    #[test]
    fn dot_and_exact() {
        for s in gen_many(".{0,8}") {
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii() && !c.is_ascii_control()));
        }
        let lens: std::collections::BTreeSet<usize> =
            gen_many("[xyz]{3}").iter().map(|s| s.len()).collect();
        assert_eq!(lens.into_iter().collect::<Vec<_>>(), vec![3]);
    }
}
