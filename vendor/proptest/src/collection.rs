//! Collection strategies: `vec`, `btree_map`, `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::{Range, RangeInclusive};

/// The number of elements a collection strategy generates.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.range(self.lo, self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Vectors of `size` elements drawn from `elem`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Maps with up to `size` entries (duplicate keys collapse, as in
/// proptest).
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_map`].
#[derive(Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let n = self.size.pick(rng);
        let mut out = BTreeMap::new();
        // A few extra draws help hit the requested size despite key
        // collisions, without risking nontermination on tiny key spaces.
        let mut attempts = 0;
        while out.len() < n && attempts < 2 * n + 8 {
            out.insert(self.key.generate(rng), self.value.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// Sets with up to `size` elements (duplicates collapse).
pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        elem,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_set`].
#[derive(Clone)]
pub struct BTreeSetStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = self.size.pick(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0;
        while out.len() < n && attempts < 2 * n + 8 {
            out.insert(self.elem.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..100 {
            let v = vec(0i64..10, 0..4).generate(&mut rng);
            assert!(v.len() < 4);
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
        let exact = vec(0i64..10, 3).generate(&mut rng);
        assert_eq!(exact.len(), 3);
    }

    #[test]
    fn map_respects_bounds_with_tiny_keyspace() {
        let mut rng = TestRng::from_seed(12);
        for _ in 0..100 {
            // Only 2 possible keys but size up to 3: must terminate.
            let m = btree_map("[ab]", 0i64..5, 1..4).generate(&mut rng);
            assert!(!m.is_empty() && m.len() <= 3);
        }
    }
}
