//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides deterministic random generation (seeded per test name, or via
//! `PROPTEST_SEED`) for the strategy combinators the test suite relies on:
//! `Just`, ranges, `&str` regex-lite patterns, tuples, `prop_oneof!`
//! (weighted and unweighted), `prop_map`, `prop_recursive`, `boxed`,
//! `prop::collection::{vec, btree_map, btree_set}`, `prop::option::of`,
//! `prop::sample::select`, and `any::<T>()` for primitives — plus the
//! `proptest!`, `prop_assert!`, and `prop_assert_eq!`/`_ne!` macros.
//!
//! There is **no shrinking**: a failing case panics with the assertion
//! message, the case number, and the seed, which is enough to reproduce
//! deterministically.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod regex_lite;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The `prop::` module facade used via `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
    pub use crate::strategy;
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a property, failing the case (not panicking
/// directly) if it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)*));
    }};
}

/// Assert two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)*));
    }};
}

/// Choose among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    config.cases,
                    |__proptest_rng| {
                        $(
                            let $arg = $crate::strategy::Strategy::generate(
                                &($strat),
                                __proptest_rng,
                            );
                        )+
                        let __proptest_result: ::core::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > = (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                        __proptest_result
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}
