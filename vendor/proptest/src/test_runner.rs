//! Deterministic test driving: config, RNG, case loop, and failure type.

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed with this message.
    Fail(String),
    /// The case asked to be discarded (kept for API parity).
    Reject(String),
}

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection from a message.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// The result type of one property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic generator handed to strategies (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// A generator seeded from a 64-bit value.
    pub fn from_seed(seed: u64) -> TestRng {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform index in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform `usize` in `[lo, hi]`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// A biased coin flip.
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        (self.next_u64() % den as u64) < num as u64
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `cases` deterministic cases of `body`, panicking on the first
/// failure with enough context to reproduce it.
pub fn run_cases(
    test_name: &str,
    cases: u32,
    mut body: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let base_seed = match std::env::var("PROPTEST_SEED") {
        Ok(v) => v.parse::<u64>().unwrap_or_else(|_| fnv1a(v.as_bytes())),
        Err(_) => 0xD8B1_5EED_0000_1986,
    };
    let seed = base_seed ^ fnv1a(test_name.as_bytes());
    let mut rng = TestRng::from_seed(seed);
    for case in 0..cases {
        match body(&mut rng) {
            Ok(()) | Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => panic!(
                "property `{test_name}` failed at case {case}/{cases} (seed {seed:#x}): {msg}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(1);
        let mut b = TestRng::from_seed(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_bounds_inclusive() {
        let mut r = TestRng::from_seed(2);
        for _ in 0..1000 {
            let x = r.range(2, 5);
            assert!((2..=5).contains(&x));
        }
        assert_eq!(r.range(3, 3), 3);
    }
}
