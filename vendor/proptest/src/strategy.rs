//! The [`Strategy`] trait and core combinators.

use crate::regex_lite;
use crate::test_runner::TestRng;
use std::sync::Arc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree or shrinking: `generate`
/// produces a value directly from the RNG.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> T + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Build recursive structures: `f` receives a strategy for the inner
    /// (shallower) levels and returns the strategy for one level up.
    /// `depth` bounds the recursion; the other two parameters are accepted
    /// for API parity with proptest's sizing heuristics.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.clone().boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            // Weight the recursive arm higher so structures are usually
            // non-trivial but always depth-bounded.
            let expanded = f(cur).boxed();
            cur = Union::new(vec![(1, leaf.clone()), (3, expanded)]).boxed();
        }
        cur
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe generation, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        T: 'static,
    {
        self
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among boxed strategies (what `prop_oneof!` builds).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

// ---------- ranges ----------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------- string patterns ----------

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regex_lite::generate(self, rng)
    }
}

// ---------- tuples ----------

macro_rules! impl_tuple_strategy {
    ($($s:ident : $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn just_and_map() {
        let mut rng = TestRng::from_seed(1);
        let s = Just(21).prop_map(|x| x * 2);
        assert_eq!(s.generate(&mut rng), 42);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..500 {
            let x = (-3i64..3).generate(&mut rng);
            assert!((-3..3).contains(&x));
            let y = (0usize..=4).generate(&mut rng);
            assert!(y <= 4);
        }
    }

    #[test]
    fn union_respects_arms() {
        let mut rng = TestRng::from_seed(3);
        let u = Union::new(vec![(1, Just(1).boxed()), (1, Just(2).boxed())]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(u.generate(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn recursive_is_depth_bounded() {
        #[derive(Debug, Clone, PartialEq)]
        enum T {
            Leaf,
            Node(Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf => 0,
                T::Node(i) => 1 + depth(i),
            }
        }
        let s =
            Just(T::Leaf).prop_recursive(3, 8, 2, |inner| inner.prop_map(|i| T::Node(Box::new(i))));
        let mut rng = TestRng::from_seed(4);
        let mut max = 0;
        for _ in 0..200 {
            max = max.max(depth(&s.generate(&mut rng)));
        }
        assert!(max <= 3, "depth {max} exceeds bound");
        assert!(max > 0, "recursion never taken");
    }
}
