//! `any::<T>()` for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical generation strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// A strategy generating arbitrary values of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix edge values in generously: overflow and boundary
                // conditions are where codecs break.
                match rng.next_u64() % 8 {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.next_u64() % 8 {
            0 => 0.0,
            1 => -0.0,
            2 => f64::NAN,
            3 => f64::INFINITY,
            4 => f64::NEG_INFINITY,
            5 => f64::MIN_POSITIVE,
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII with some multi-byte characters.
        match rng.next_u64() % 4 {
            0 => char::from_u32(0x20 + (rng.next_u64() % 0x5F) as u32).unwrap(),
            1 => 'é',
            2 => '∀',
            _ => char::from_u32(0x61 + (rng.next_u64() % 26) as u32).unwrap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_edges() {
        let mut rng = TestRng::from_seed(5);
        let mut saw_max = false;
        let mut saw_nan = false;
        for _ in 0..200 {
            if i64::arbitrary(&mut rng) == i64::MAX {
                saw_max = true;
            }
            if f64::arbitrary(&mut rng).is_nan() {
                saw_nan = true;
            }
        }
        assert!(saw_max && saw_nan);
    }
}
