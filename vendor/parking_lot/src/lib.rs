//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! Only the surface the workspace uses is provided: [`Mutex`] and
//! [`RwLock`] with non-poisoning `lock`/`read`/`write`, and a
//! [`Condvar`] with parking_lot's `wait(&mut guard)` calling
//! convention. A panicking holder does not poison the lock — matching
//! parking_lot semantics — because poisoned guards are recovered
//! transparently.

use std::ops::{Deref, DerefMut};
use std::sync::{self, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// A mutual-exclusion primitive (non-poisoning `lock`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// An RAII guard for a [`Mutex`]. Wraps the std guard so a [`Condvar`]
/// can temporarily take it during a wait while the caller keeps holding
/// a `&mut` borrow — parking_lot's calling convention.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    /// `None` only transiently inside a condvar wait.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Whether a timed condvar wait returned because the timeout elapsed.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait gave up because its deadline passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with parking_lot's `&mut MutexGuard` calling
/// convention (the guard is released for the duration of the wait and
/// re-acquired before returning).
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, atomically releasing the guard's lock.
    /// Spurious wakeups are possible, as with any condvar.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        let g = self.0.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Block until notified or `deadline` passes. A deadline already in
    /// the past returns immediately with `timed_out() == true`.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        if timeout.is_zero() {
            return WaitTimeoutResult(true);
        }
        let g = guard.inner.take().expect("guard taken during wait");
        let (g, res) = match self.0.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => e.into_inner(),
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock (non-poisoning `read`/`write`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock guarding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(5));
        assert!(res.timed_out());
        // The guard is usable again after the wait.
        *g = true;
        assert!(*g);
    }

    #[test]
    fn condvar_wakes_a_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            *ready = true;
            cv.notify_one();
            drop(ready);
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        let deadline = Instant::now() + Duration::from_secs(5);
        while !*ready {
            assert!(
                !cv.wait_until(&mut ready, deadline).timed_out(),
                "lost wakeup"
            );
        }
        t.join().unwrap();
    }
}
