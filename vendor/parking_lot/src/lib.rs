//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! Only the surface the workspace uses is provided: [`Mutex`] and
//! [`RwLock`] with non-poisoning `lock`/`read`/`write`. A panicking
//! holder does not poison the lock — matching parking_lot semantics —
//! because poisoned guards are recovered transparently.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive (non-poisoning `lock`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (non-poisoning `read`/`write`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock guarding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
