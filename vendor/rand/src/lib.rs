//! Offline stand-in for the subset of `rand` 0.8 used by this workspace:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`Rng::gen_range`] over integer ranges. The generator is xoshiro256**
//! seeded via splitmix64 — deterministic and statistically adequate for
//! workload generation (not cryptographic).

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be uniformly sampled from a range.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                // Modulo bias is negligible for the small spans used in
                // workload generation.
                let off = rng.next_u64() % span;
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                     i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

/// Convenience methods on random sources.
pub trait Rng: RngCore {
    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Rngs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.gen_range(0..5usize);
            assert_eq!(x, b.gen_range(0..5usize));
            assert!(x < 5);
        }
        let mut c = StdRng::seed_from_u64(8);
        let differs = (0..10).any(|_| a.gen_range(0..1_000_000i64) != c.gen_range(0..1_000_000i64));
        assert!(differs, "different seeds should diverge");
    }

    #[test]
    fn negative_ranges() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let x = r.gen_range(-3i64..3);
            assert!((-3..3).contains(&x));
        }
    }
}
